"""Histogram learning — the paper's default representation (§II-B).

Supports equi-width bucketing (fixed-width buckets over the sample range
or a caller-supplied range) and equi-depth bucketing (buckets hold roughly
equal numbers of observations).  Callers may also pin the edges entirely,
which the experiments use so that the "true" histogram (from the large
sample) and the learned one (from the small sample) share buckets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution

__all__ = ["equi_width_edges", "equi_depth_edges", "HistogramLearner"]


def equi_width_edges(
    sample: np.ndarray, bucket_count: int,
    value_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Evenly spaced bucket edges over the sample (or given) range.

    A degenerate range (all observations equal) is widened by one unit so
    the histogram still has positive-width buckets.
    """
    if bucket_count < 1:
        raise LearningError(f"bucket count must be >= 1, got {bucket_count}")
    if value_range is None:
        lo, hi = float(sample.min()), float(sample.max())
    else:
        lo, hi = value_range
    if hi <= lo:
        lo, hi = lo - 0.5, lo + 0.5
    return np.linspace(lo, hi, bucket_count + 1)


def equi_depth_edges(sample: np.ndarray, bucket_count: int) -> np.ndarray:
    """Bucket edges at evenly spaced sample quantiles.

    Duplicate quantiles (heavy ties) are collapsed, so the result may have
    fewer buckets than requested; at least one bucket always survives.
    """
    if bucket_count < 1:
        raise LearningError(f"bucket count must be >= 1, got {bucket_count}")
    quantiles = np.linspace(0.0, 1.0, bucket_count + 1)
    edges = np.quantile(sample, quantiles)
    edges = np.unique(edges)
    if edges.size < 2:
        value = float(edges[0]) if edges.size else 0.0
        edges = np.array([value - 0.5, value + 0.5])
    return edges


class HistogramLearner(Learner):
    """Learns a :class:`HistogramDistribution` from a sample.

    Parameters
    ----------
    bucket_count:
        Number of buckets (ignored when ``edges`` is given).
    strategy:
        ``"equi_width"`` or ``"equi_depth"``.
    edges:
        Explicit bucket edges; observations outside are clamped into the
        first/last bucket.
    value_range:
        Optional fixed (lo, hi) range for equi-width bucketing, letting
        histograms of different samples share a bucketisation.
    """

    def __init__(
        self,
        bucket_count: int = 10,
        strategy: str = "equi_width",
        edges: Sequence[float] | None = None,
        value_range: tuple[float, float] | None = None,
    ) -> None:
        if strategy not in ("equi_width", "equi_depth"):
            raise LearningError(f"unknown bucketing strategy {strategy!r}")
        if bucket_count < 1:
            raise LearningError(
                f"bucket count must be >= 1, got {bucket_count}"
            )
        self.bucket_count = bucket_count
        self.strategy = strategy
        self.edges = None if edges is None else np.asarray(edges, dtype=float)
        self.value_range = value_range

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=1)
        if self.edges is not None:
            edges = self.edges
        elif self.strategy == "equi_width":
            edges = equi_width_edges(arr, self.bucket_count, self.value_range)
        else:
            edges = equi_depth_edges(arr, self.bucket_count)
        clamped = np.clip(arr, edges[0], edges[-1])
        counts, _ = np.histogram(clamped, bins=edges)
        if counts.sum() == 0:
            raise LearningError("no observations fell into any bucket")
        histogram = HistogramDistribution.from_counts(edges, counts)
        return LearnedDistribution(histogram, arr)
