"""Histogram learning — the paper's default representation (§II-B).

Supports equi-width bucketing (fixed-width buckets over the sample range
or a caller-supplied range) and equi-depth bucketing (buckets hold roughly
equal numbers of observations).  Callers may also pin the edges entirely,
which the experiments use so that the "true" histogram (from the large
sample) and the learned one (from the small sample) share buckets.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import accuracy_from_stats
from repro.distributions.histogram import HistogramDistribution
from repro.errors import LearningError
from repro.learning.base import Learner, LearnedDistribution
from repro.learning.partial import DEFAULT_RESUM_INTERVAL, PartialFitState

__all__ = ["equi_width_edges", "equi_depth_edges", "HistogramLearner"]


class _HistogramPartial(PartialFitState):
    """Rolling histogram state: bin counts + Welford sample moments.

    Bin counts are integers, so increment/decrement are exact; the
    inherited Welford moments (for the Lemma-2 mean/variance intervals)
    carry the drift guard.
    """

    __slots__ = ("edges", "_edge_list", "counts")

    def __init__(self, edges: np.ndarray, resum_interval: int) -> None:
        super().__init__(resum_interval)
        self.edges = edges
        self._edge_list = [float(e) for e in edges]
        self.counts = [0] * (len(edges) - 1)

    @property
    def nbytes(self) -> int:
        return (
            super().nbytes
            + self.edges.nbytes
            + 32 * len(self._edge_list)
            + 40 * len(self.counts)
        )

    def bin_index(self, x: float) -> int:
        """Bucket of ``x`` under ``np.histogram`` semantics, after clamping.

        Bins are half-open ``[e_i, e_{i+1})`` with the last bin closed;
        out-of-range observations clamp into the first/last bin (same as
        :meth:`HistogramLearner.learn` with explicit edges).
        """
        edge_list = self._edge_list
        index = bisect_right(edge_list, x) - 1
        if index < 0:
            return 0
        last = len(edge_list) - 2
        return last if index > last else index


def equi_width_edges(
    sample: np.ndarray, bucket_count: int,
    value_range: tuple[float, float] | None = None,
) -> np.ndarray:
    """Evenly spaced bucket edges over the sample (or given) range.

    A degenerate range (all observations equal) is widened by one unit so
    the histogram still has positive-width buckets.
    """
    if bucket_count < 1:
        raise LearningError(f"bucket count must be >= 1, got {bucket_count}")
    if value_range is None:
        lo, hi = float(sample.min()), float(sample.max())
    else:
        lo, hi = value_range
    if hi <= lo:
        lo, hi = lo - 0.5, lo + 0.5
    return np.linspace(lo, hi, bucket_count + 1)


def equi_depth_edges(sample: np.ndarray, bucket_count: int) -> np.ndarray:
    """Bucket edges at evenly spaced sample quantiles.

    Duplicate quantiles (heavy ties) are collapsed, so the result may have
    fewer buckets than requested; at least one bucket always survives.
    """
    if bucket_count < 1:
        raise LearningError(f"bucket count must be >= 1, got {bucket_count}")
    quantiles = np.linspace(0.0, 1.0, bucket_count + 1)
    edges = np.quantile(sample, quantiles)
    edges = np.unique(edges)
    if edges.size < 2:
        value = float(edges[0]) if edges.size else 0.0
        edges = np.array([value - 0.5, value + 0.5])
    return edges


class HistogramLearner(Learner):
    """Learns a :class:`HistogramDistribution` from a sample.

    Parameters
    ----------
    bucket_count:
        Number of buckets (ignored when ``edges`` is given).
    strategy:
        ``"equi_width"`` or ``"equi_depth"``.
    edges:
        Explicit bucket edges; observations outside are clamped into the
        first/last bucket.
    value_range:
        Optional fixed (lo, hi) range for equi-width bucketing, letting
        histograms of different samples share a bucketisation.
    """

    def __init__(
        self,
        bucket_count: int = 10,
        strategy: str = "equi_width",
        edges: Sequence[float] | None = None,
        value_range: tuple[float, float] | None = None,
    ) -> None:
        if strategy not in ("equi_width", "equi_depth"):
            raise LearningError(f"unknown bucketing strategy {strategy!r}")
        if bucket_count < 1:
            raise LearningError(
                f"bucket count must be >= 1, got {bucket_count}"
            )
        self.bucket_count = bucket_count
        self.strategy = strategy
        self.edges = None if edges is None else np.asarray(edges, dtype=float)
        self.value_range = value_range

    def learn(self, sample: "np.ndarray | list[float]") -> LearnedDistribution:
        arr = self._validated(sample, minimum=1)
        if self.edges is not None:
            edges = self.edges
        elif self.strategy == "equi_width":
            edges = equi_width_edges(arr, self.bucket_count, self.value_range)
        else:
            edges = equi_depth_edges(arr, self.bucket_count)
        clamped = np.clip(arr, edges[0], edges[-1])
        counts, _ = np.histogram(clamped, bins=edges)
        if counts.sum() == 0:
            raise LearningError("no observations fell into any bucket")
        histogram = HistogramDistribution.from_counts(edges, counts)
        return LearnedDistribution(histogram, arr)

    # -- incremental hooks ---------------------------------------------------

    def fixed_edges(self) -> np.ndarray | None:
        """The bucket edges when they are knowable without a sample.

        Explicit ``edges`` win; equi-width bucketing with a pinned
        ``value_range`` is also fixed.  Data-dependent bucketisations
        (range-free equi-width, equi-depth) return ``None`` — they
        cannot be maintained incrementally.
        """
        if self.edges is not None:
            return self.edges
        if self.strategy == "equi_width" and self.value_range is not None:
            return equi_width_edges(
                np.empty(0), self.bucket_count, self.value_range
            )
        return None

    @property
    def supports_partial(self) -> bool:  # type: ignore[override]
        """Incremental maintenance needs fixed bucket edges."""
        return self.fixed_edges() is not None

    def partial_begin(
        self, resum_interval: int | None = None
    ) -> _HistogramPartial:
        edges = self.fixed_edges()
        if edges is None:
            raise LearningError(
                "incremental histogram learning needs fixed bucket edges: "
                "pass edges=... or strategy='equi_width' with value_range=..."
            )
        if resum_interval is None:
            resum_interval = DEFAULT_RESUM_INTERVAL
        return _HistogramPartial(edges, resum_interval)

    def partial_add(self, state: _HistogramPartial, x: float) -> None:
        value = self._validated_observation(x)
        state.add(value)
        state.counts[state.bin_index(value)] += 1

    def partial_evict(self, state: _HistogramPartial, x: float) -> None:
        value = self._validated_observation(x)
        state.evict(value)  # raises if the value is not in the window
        index = state.bin_index(value)
        state.counts[index] -= 1

    def partial_distribution(
        self, state: _HistogramPartial
    ) -> HistogramDistribution:
        if state.count < 1:
            raise LearningError("need at least 1 observation, got 0")
        return HistogramDistribution.from_counts(state.edges, state.counts)

    def partial_accuracy(
        self, state: _HistogramPartial, confidence: float = 0.95
    ) -> AccuracyInfo:
        return accuracy_from_stats(
            state.mean,
            state.variance,
            state.count,
            confidence,
            histogram=self.partial_distribution(state),
        )

    def partial_moments(
        self, state: _HistogramPartial
    ) -> tuple[float, float, int]:
        return state.mean, state.variance, state.count
