"""Uncertain tuples and schemas (paper §II-A).

A tuple ``T_i`` has a membership probability ``p_i`` (tuple uncertainty)
and attributes that are in general probability distributions (attribute
uncertainty).  We represent a distribution-valued attribute as a
:class:`~repro.core.dfsample.DfSized` — a distribution plus the sample
size it was learned from — so accuracy can propagate through queries.
Plain Python numbers and strings are allowed too and behave like
deterministic fields.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.core.dfsample import DfSized
from repro.distributions.base import Distribution, as_distribution
from repro.errors import SchemaError

__all__ = ["AttributeSpec", "Schema", "UncertainTuple"]

_KINDS = ("distribution", "number", "text", "any")


@dataclasses.dataclass(frozen=True, slots=True)
class AttributeSpec:
    """Declared name and kind of a stream attribute."""

    name: str
    kind: str = "any"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind not in _KINDS:
            raise SchemaError(
                f"unknown attribute kind {self.kind!r}; expected one of {_KINDS}"
            )

    def accepts(self, value: object) -> bool:
        if self.kind == "any":
            return True
        if self.kind == "distribution":
            return isinstance(value, (DfSized, Distribution))
        if self.kind == "number":
            return isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        return isinstance(value, str)


class Schema:
    """An ordered set of attribute specs with O(1) lookup by name."""

    def __init__(self, attributes: Iterable[AttributeSpec | tuple[str, str] | str]) -> None:
        specs: list[AttributeSpec] = []
        for attr in attributes:
            if isinstance(attr, AttributeSpec):
                specs.append(attr)
            elif isinstance(attr, tuple):
                specs.append(AttributeSpec(*attr))
            else:
                specs.append(AttributeSpec(attr))
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._specs = tuple(specs)
        self._by_name = {s.name: s for s in specs}

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, name: str) -> AttributeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r} in schema") from None

    def validate(self, tup: "UncertainTuple") -> None:
        """Raise SchemaError unless the tuple matches this schema exactly."""
        missing = [n for n in self.names if n not in tup.attributes]
        if missing:
            raise SchemaError(f"tuple missing attributes {missing}")
        extra = [n for n in tup.attributes if n not in self._by_name]
        if extra:
            raise SchemaError(f"tuple has undeclared attributes {extra}")
        for spec in self._specs:
            value = tup.attributes[spec.name]
            if not spec.accepts(value):
                raise SchemaError(
                    f"attribute {spec.name!r} expects kind {spec.kind!r}, "
                    f"got {type(value).__name__}"
                )

    def validate_batch(self, tuples: "Iterable[UncertainTuple]") -> None:
        """Validate many tuples with the per-tuple set algebra hoisted out.

        Equivalent to calling :meth:`validate` on each tuple in order —
        same first error, same message — but tuples whose key layout
        matches the schema (the overwhelmingly common case for a
        stream) skip the missing/extra list computations and only run
        the kind checks that can actually fail.
        """
        checks = tuple(s for s in self._specs if s.kind != "any")
        keys = self._by_name.keys()
        for tup in tuples:
            attributes = tup.attributes
            if attributes.keys() != keys:
                self.validate(tup)  # exact missing/extra error
            for spec in checks:
                if not spec.accepts(attributes[spec.name]):
                    raise SchemaError(
                        f"attribute {spec.name!r} expects kind "
                        f"{spec.kind!r}, "
                        f"got {type(attributes[spec.name]).__name__}"
                    )

    def __repr__(self) -> str:
        fields = ", ".join(f"{s.name}:{s.kind}" for s in self._specs)
        return f"Schema({fields})"


@dataclasses.dataclass(slots=True)
class UncertainTuple:
    """One stream element: attributes + membership probability + timestamp."""

    attributes: dict[str, object]
    probability: float = 1.0
    timestamp: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.attributes, Mapping):
            raise SchemaError("attributes must be a mapping")
        self.attributes = dict(self.attributes)
        if not 0.0 <= self.probability <= 1.0:
            raise SchemaError(
                f"membership probability must be in [0,1], "
                f"got {self.probability}"
            )

    def value(self, name: str) -> object:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(f"tuple has no attribute {name!r}") from None

    def dfsized(self, name: str) -> DfSized:
        """The attribute as a DfSized, coercing raw numbers to exact values."""
        value = self.value(name)
        if isinstance(value, DfSized):
            return value
        if isinstance(value, Distribution):
            return DfSized(value, None)
        return DfSized(as_distribution(value), None)

    def with_attributes(self, attributes: dict[str, object]) -> "UncertainTuple":
        """Copy with replaced attributes (probability/timestamp preserved)."""
        return UncertainTuple(attributes, self.probability, self.timestamp)

    def scaled(self, factor: float) -> "UncertainTuple":
        """Copy with membership probability multiplied by ``factor``."""
        return UncertainTuple(
            dict(self.attributes),
            self.probability * factor,
            self.timestamp,
        )
