"""Window joins over uncertain streams.

A symmetric count-window equi-join: tuples from two logical inputs are
buffered in per-side sliding windows; each arrival probes the opposite
window and emits one output tuple per key match.  Under tuple-level
uncertainty and independence across streams, the joined tuple's
membership probability is the product of the inputs' probabilities —
standard possible-world semantics for joins.

Because the engine's pipelines are linear, the join is fed through one
upstream operator with a ``side`` tag per tuple (see :class:`TagSide`),
which keeps arrival order global and deterministic.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.errors import StreamError
from repro.streams.operators import Operator
from repro.streams.tuples import UncertainTuple

__all__ = ["TagSide", "WindowJoin"]

_SIDE_ATTR = "__join_side__"


class TagSide(Operator):
    """Tags every tuple with a join side ('left' or 'right').

    Use two of these when merging two physical sources into the single
    stream a :class:`WindowJoin` consumes.
    """

    def __init__(self, side: str) -> None:
        super().__init__()
        if side not in ("left", "right"):
            raise StreamError(f"join side must be 'left' or 'right', got {side!r}")
        self.side = side

    def process(self, tup: UncertainTuple) -> None:
        attributes = dict(tup.attributes)
        attributes[_SIDE_ATTR] = self.side
        self.emit(tup.with_attributes(attributes))


class WindowJoin(Operator):
    """Symmetric sliding-window equi-join of a side-tagged stream.

    Parameters
    ----------
    key:
        Attribute name both sides join on (compared with ``==``).
    window_size:
        Per-side count window: each side retains its most recent
        ``window_size`` tuples.
    prefix_left / prefix_right:
        Output attribute prefixes; every non-key attribute is emitted as
        ``<prefix><name>`` so same-named attributes from the two sides
        never collide.  The key is emitted once, unprefixed.
    side_of:
        Optional override: a callable mapping a tuple to 'left'/'right'.
        Defaults to reading the tag set by :class:`TagSide`.
    """

    def __init__(
        self,
        key: str,
        window_size: int,
        prefix_left: str = "l_",
        prefix_right: str = "r_",
        side_of: Callable[[UncertainTuple], str] | None = None,
    ) -> None:
        super().__init__()
        if window_size < 1:
            raise StreamError(
                f"window size must be >= 1, got {window_size}"
            )
        if prefix_left == prefix_right:
            raise StreamError("join prefixes must differ")
        self.key = key
        self.window_size = window_size
        self.prefix_left = prefix_left
        self.prefix_right = prefix_right
        self.side_of = side_of
        self._windows: dict[str, deque[UncertainTuple]] = {
            "left": deque(), "right": deque(),
        }
        self.matches = 0

    def _side(self, tup: UncertainTuple) -> str:
        if self.side_of is not None:
            side = self.side_of(tup)
        else:
            side = tup.attributes.get(_SIDE_ATTR)  # type: ignore[assignment]
        if side not in ("left", "right"):
            raise StreamError(
                "WindowJoin received an untagged tuple; route sources "
                "through TagSide or pass side_of"
            )
        return side

    def _strip(self, tup: UncertainTuple) -> dict[str, object]:
        return {
            name: value
            for name, value in tup.attributes.items()
            if name != _SIDE_ATTR
        }

    def _merge(
        self, left: UncertainTuple, right: UncertainTuple
    ) -> UncertainTuple:
        attributes: dict[str, object] = {self.key: left.value(self.key)}
        for name, value in self._strip(left).items():
            if name != self.key:
                attributes[self.prefix_left + name] = value
        for name, value in self._strip(right).items():
            if name != self.key:
                attributes[self.prefix_right + name] = value
        return UncertainTuple(
            attributes,
            probability=left.probability * right.probability,
            timestamp=left.timestamp
            if right.timestamp is None else right.timestamp,
        )

    def process(self, tup: UncertainTuple) -> None:
        side = self._side(tup)
        other = "right" if side == "left" else "left"
        key_value = tup.value(self.key)

        for candidate in self._windows[other]:
            if candidate.value(self.key) == key_value:
                self.matches += 1
                if side == "left":
                    self.emit(self._merge(tup, candidate))
                else:
                    self.emit(self._merge(candidate, tup))

        window = self._windows[side]
        window.append(tup)
        if len(window) > self.window_size:
            window.popleft()
