"""Push-based stream operators.

Operators form a linear pipeline (fan-in/fan-out are expressed by running
several pipelines over the same source).  Each operator receives a tuple,
does its work, and pushes zero or more tuples downstream; ``flush``
propagates end-of-stream so windowed operators can drain.

The two filters embody the paper's two predicate styles:

* :class:`ProbabilisticFilter` — classic probability-threshold semantics:
  the tuple's membership probability is multiplied by P[predicate].
* :class:`SignificanceFilter` — the paper's significance predicates with
  coupled error-rate control (§IV): TRUE keeps the tuple, FALSE drops it,
  and UNSURE is kept or dropped by policy.
"""

from __future__ import annotations

import abc
import math
from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from time import perf_counter

import numpy as np

from repro.core.analytic import accuracy_from_moments
from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.dfsample import DfSized
from repro.core.predicates import SignificancePredicate
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.obs.instrument import OperatorMetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import OperatorTrace, Tracer
from repro.streams.columnar import (
    EXACT_SIZE,
    ColumnarBatch,
    GaussianDfColumn,
    _infer_column,
    as_columnar,
)
from repro.streams.rolling import DEFAULT_RESUM_INTERVAL, RollingWindowStats
from repro.streams.tuples import UncertainTuple
from repro.streams.windows import CountWindow

__all__ = [
    "Operator",
    "Select",
    "Project",
    "Derive",
    "ProbabilisticFilter",
    "SignificanceFilter",
    "SlidingGaussianAverage",
    "WindowAggregate",
    "TimeWindowAggregate",
    "RollingLearnOperator",
    "CollectSink",
    "CountingSink",
]


class Operator(abc.ABC):
    """Base class: process tuples, push results to the downstream operator.

    Entry points (:meth:`receive`, :meth:`receive_many`, :meth:`emit`,
    :meth:`emit_many`, :meth:`flush`) double as observability hooks: when
    a :class:`~repro.obs.metrics.MetricsRegistry` is attached (via
    :meth:`attach_metrics`, usually through ``Pipeline(registry=...)``)
    they record tuples in/out, wall time per call, and batch sizes.  With
    no registry attached each hook is a single attribute check, so the
    uninstrumented hot path is unchanged.

    Subclasses implement :meth:`process` (one tuple) and may override
    :meth:`process_many` (one batch) — not the ``receive*`` entry points,
    which own the instrumentation.
    """

    #: Attribute whose accuracy the operator reports on emitted tuples
    #: (an :class:`~repro.core.accuracy.AccuracyInfo` or a
    #: :class:`~repro.core.dfsample.DfSized`).  ``None`` disables the
    #: interval-width/sample-size histograms.
    accuracy_attribute: str | None = None

    #: Set by operators holding drift-guarded rolling state
    #: (:mod:`repro.streams.rolling`): registers the per-operator
    #: ``rolling.resums`` counter and ``rolling.drift`` histogram and
    #: triggers :meth:`_sync_rolling_metrics` on attach/detach.
    rolling_metrics: bool = False

    #: Set by operators with meaningful retained state: registers the
    #: per-operator ``state.bytes`` gauge, sampled from
    #: :meth:`state_bytes` on every :meth:`flush` (opt-in, like
    #: ``rolling_metrics``, so stateless operators pay nothing).
    memory_metrics: bool = False

    def __init__(self) -> None:
        self._downstream: Operator | None = None
        self._obs: OperatorMetrics | None = None
        self._trace: OperatorTrace | None = None

    def connect(self, downstream: "Operator") -> "Operator":
        """Attach (and return) the downstream operator, enabling chaining."""
        self._downstream = downstream
        return downstream

    def attach_metrics(
        self, registry: MetricsRegistry, name: str | None = None
    ) -> OperatorMetrics:
        """Start recording this operator's metrics into ``registry``."""
        if name is None:
            name = type(self).__name__.lstrip("_")
        self._obs = OperatorMetrics(
            registry,
            name,
            self.accuracy_attribute,
            rolling=self.rolling_metrics,
            memory=self.memory_metrics,
        )
        self._sync_rolling_metrics()
        return self._obs

    def detach_metrics(self) -> None:
        """Stop recording metrics (already-recorded values are kept)."""
        self._obs = None
        self._sync_rolling_metrics()

    def attach_trace(
        self, tracer: Tracer, name: str | None = None, index: int = 0
    ) -> OperatorTrace:
        """Start recording this operator's spans into ``tracer``.

        Mirrors :meth:`attach_metrics`: the handle carries the stage
        name/index and the ``accuracy_attribute`` feeding provenance.
        """
        if name is None:
            name = type(self).__name__.lstrip("_")
        self._trace = OperatorTrace(
            tracer, name, index, self.accuracy_attribute
        )
        return self._trace

    def detach_trace(self) -> None:
        """Stop recording spans (already-recorded spans are kept)."""
        self._trace = None

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object] | None:
        """Accuracy lineage of one *emitted* tuple, for provenance.

        Accuracy-producing operators override this to report the named
        input sample sizes behind the emitted accuracy attribute and the
        Lemma-3 minimum that became the de facto size (usually via
        :func:`~repro.obs.provenance.lineage_from_operands`).  Must be a
        pure function of the emitted tuple — never of operator state —
        so the per-tuple and batched paths record identical lineage.
        """
        return None

    def _sync_rolling_metrics(self) -> None:
        """Hook: bind/unbind drift-guard metrics on rolling kernels.

        Operators with ``rolling_metrics = True`` override this to call
        ``set_metrics`` on each rolling state they hold — binding when
        ``self._obs`` is set, unbinding otherwise.  Unbinding matters:
        ``Pipeline.pristine`` deep-copies operators after detaching
        metrics, and kernel state must never drag registry objects into
        worker processes.
        """

    def reseed(self, seed: object) -> None:
        """Replace internal randomness from a ``numpy`` seed sequence.

        Sharded execution calls this with a distinct
        ``np.random.SeedSequence`` per operator per shard
        (:meth:`Pipeline.reseed`).  Operators holding a generator should
        override it with ``self._rng = np.random.default_rng(seed)``;
        the default is a no-op because most operators are deterministic.
        """

    def emit(self, tup: UncertainTuple) -> None:
        obs = self._obs
        if obs is not None:
            obs.tuples_out.inc()
            if obs.accuracy_attribute is not None:
                obs.observe_accuracy(tup)
        trace = self._trace
        if trace is not None:
            trace.on_emit(self, tup)
        if self._downstream is not None:
            self._downstream.receive(tup)

    def emit_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Push a whole batch downstream (batch-aware operators)."""
        if not tuples:
            return
        obs = self._obs
        if obs is not None:
            obs.tuples_out.inc(len(tuples))
            if obs.accuracy_attribute is not None:
                observe = obs.observe_accuracy
                for tup in tuples:
                    observe(tup)
        trace = self._trace
        if trace is not None:
            trace.on_emit_many(self, tuples)
        if self._downstream is not None:
            self._downstream.receive_many(tuples)

    def receive(self, tup: UncertainTuple) -> None:
        obs = self._obs
        trace = self._trace
        if obs is None and trace is None:
            self.process(tup)
            return
        if obs is not None:
            obs.tuples_in.inc()
        if trace is not None:
            trace.on_receive()
        start = perf_counter()
        try:
            self.process(tup)
        finally:
            elapsed = perf_counter() - start
            if obs is not None:
                obs.process_seconds.record(elapsed)
            if trace is not None:
                trace.seconds += elapsed

    def receive_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Handle a batch of tuples (``Pipeline.run_batched``)."""
        obs = self._obs
        trace = self._trace
        if obs is None and trace is None:
            self.process_many(tuples)
            return
        if obs is not None:
            obs.tuples_in.inc(len(tuples))
            obs.batch_sizes.observe(len(tuples))
        span = None
        out_before = 0
        if trace is not None:
            out_before = trace.tuples_out
            span = trace.begin_batch(len(tuples))
        start = perf_counter()
        try:
            self.process_many(tuples)
        finally:
            elapsed = perf_counter() - start
            if obs is not None:
                obs.batch_seconds.record(elapsed)
            if trace is not None:
                trace.seconds += elapsed
                trace.end_batch(span, trace.tuples_out - out_before)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Batch-processing hook behind :meth:`receive_many`.

        The default falls back to per-tuple :meth:`process`, but collects
        everything the operator emits and hands it downstream as one
        batch, so batch-aware operators further down the chain still see
        batches.  Operators are order-preserving, hence the sink contents
        are identical to the per-tuple path.
        """
        downstream = self._downstream
        if downstream is None:
            for tup in tuples:
                self.process(tup)
            return
        collector = _BatchCollector()
        self._downstream = collector
        try:
            for tup in tuples:
                self.process(tup)
        finally:
            self._downstream = downstream
        if collector.batch:
            downstream.receive_many(collector.batch)

    @abc.abstractmethod
    def process(self, tup: UncertainTuple) -> None:
        """Handle one input tuple (call :meth:`emit` for each output)."""

    def flush(self) -> None:
        """Propagate end-of-stream; override ``on_flush`` to drain state."""
        obs = self._obs
        trace = self._trace
        if obs is None and trace is None:
            self.on_flush()
        else:
            start = perf_counter()
            try:
                self.on_flush()
            finally:
                elapsed = perf_counter() - start
                if obs is not None:
                    obs.flush_seconds.record(elapsed)
                if trace is not None:
                    trace.seconds += elapsed
            if obs is not None and obs.memory:
                retained = self.state_bytes()
                if retained is not None:
                    obs.record_state_bytes(retained)
        if self._downstream is not None:
            self._downstream.flush()

    def on_flush(self) -> None:
        """Hook for subclasses with buffered state."""

    def state_bytes(self) -> int | None:
        """Approximate bytes of retained operator state, or ``None``.

        Operators with ``memory_metrics = True`` override this; the
        value is sampled into the ``{op}.state.bytes`` gauge on every
        :meth:`flush` (not per tuple — sizing state can be O(state)).
        """
        return None


class _BatchCollector(Operator):
    """Internal sink that buffers emitted tuples during a batch step."""

    def __init__(self) -> None:
        super().__init__()
        self.batch: list[UncertainTuple] = []

    def process(self, tup: UncertainTuple) -> None:
        self.batch.append(tup)


class Select(Operator):
    """Keeps tuples for which ``predicate(tuple)`` is truthy."""

    def __init__(self, predicate: Callable[[UncertainTuple], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def process(self, tup: UncertainTuple) -> None:
        if self.predicate(tup):
            self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        predicate = self.predicate
        if isinstance(tuples, ColumnarBatch):
            # The predicate is a black box, so rows materialize for the
            # test — but survivors stay columnar downstream.
            kept = [i for i, tup in enumerate(tuples) if predicate(tup)]
            if len(kept) == len(tuples):
                self.emit_many(tuples)
            else:
                self.emit_many(tuples.take(kept))
            return
        self.emit_many([tup for tup in tuples if predicate(tup)])


class Project(Operator):
    """Keeps only the named attributes."""

    def __init__(self, names: Sequence[str]) -> None:
        super().__init__()
        if not names:
            raise StreamError("projection needs at least one attribute")
        self.names = tuple(names)

    def process(self, tup: UncertainTuple) -> None:
        projected = {name: tup.value(name) for name in self.names}
        self.emit(tup.with_attributes(projected))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        names = self.names
        if isinstance(tuples, ColumnarBatch) and all(
            name in tuples.names for name in names
        ):
            self.emit_many(tuples.project(names))
            return
        # Missing attributes raise the canonical per-tuple SchemaError.
        self.emit_many(
            [
                tup.with_attributes(
                    {name: tup.value(name) for name in names}
                )
                for tup in tuples
            ]
        )


class Derive(Operator):
    """Adds a computed attribute ``name = fn(tuple)``."""

    def __init__(
        self, name: str, fn: Callable[[UncertainTuple], object]
    ) -> None:
        super().__init__()
        self.name = name
        self.fn = fn

    def process(self, tup: UncertainTuple) -> None:
        attributes = dict(tup.attributes)
        attributes[self.name] = self.fn(tup)
        self.emit(tup.with_attributes(attributes))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        fn = self.fn
        if isinstance(tuples, ColumnarBatch):
            values = [fn(tup) for tup in tuples]
            self.emit_many(
                tuples.with_column(self.name, _infer_column(values))
            )
            return
        name = self.name
        out = []
        for tup in tuples:
            attributes = dict(tup.attributes)
            attributes[name] = fn(tup)
            out.append(tup.with_attributes(attributes))
        self.emit_many(out)


class ProbabilisticFilter(Operator):
    """Probability-threshold filtering (possible-world semantics).

    ``probability_fn(tuple)`` returns P[predicate holds] for the tuple; the
    output tuple's membership probability is scaled by it.  Tuples whose
    resulting probability falls below ``threshold`` are dropped (the
    default threshold 0 keeps every tuple with positive probability —
    plain possible-world semantics).
    """

    def __init__(
        self,
        probability_fn: Callable[[UncertainTuple], float],
        threshold: float = 0.0,
    ) -> None:
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise StreamError(
                f"probability threshold must be in [0,1], got {threshold}"
            )
        self.probability_fn = probability_fn
        self.threshold = threshold

    def process(self, tup: UncertainTuple) -> None:
        q = float(self.probability_fn(tup))
        if not 0.0 <= q <= 1.0:
            raise StreamError(
                f"predicate probability must be in [0,1], got {q}"
            )
        scaled = tup.scaled(q)
        if scaled.probability > self.threshold:
            self.emit(scaled)


class SignificanceFilter(Operator):
    """Filters by a significance predicate with coupled error-rate control.

    ``predicate_factory(tuple)`` binds the test to the tuple's fields; the
    coupled decision keeps TRUE tuples, drops FALSE ones, and treats UNSURE
    per ``keep_unsure``.  Decisions are counted for observability.
    """

    def __init__(
        self,
        predicate_factory: Callable[[UncertainTuple], SignificancePredicate],
        alpha1: float = 0.05,
        alpha2: float = 0.05,
        keep_unsure: bool = False,
    ) -> None:
        super().__init__()
        self.predicate_factory = predicate_factory
        self.alpha1 = alpha1
        self.alpha2 = alpha2
        self.keep_unsure = keep_unsure
        self.decisions: Counter[ThreeValued] = Counter()

    def process(self, tup: UncertainTuple) -> None:
        predicate = self.predicate_factory(tup)
        outcome = coupled_tests(predicate, self.alpha1, self.alpha2)
        self.decisions[outcome.value] += 1
        keep = outcome.value is ThreeValued.TRUE or (
            outcome.value is ThreeValued.UNSURE and self.keep_unsure
        )
        if keep:
            self.emit(tup)


class SlidingGaussianAverage(Operator):
    """Count-based sliding-window AVG over a Gaussian attribute (§V-C).

    Maintains compensated running sums of the window members' means and
    variances (:class:`~repro.streams.rolling.RollingWindowStats`), so
    each arrival costs O(1) with drift-guarded accuracy; the result
    attribute is the exact Gaussian of the average of independent
    Gaussians, tagged with the window's minimum input sample size
    (Lemma 3: the d.f. sample size of the AVG).
    """

    rolling_metrics = True
    memory_metrics = True

    def __init__(
        self,
        attribute: str,
        window_size: int,
        output: str = "avg",
        emit_partial: bool = True,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
    ) -> None:
        super().__init__()
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        self.attribute = attribute
        self.window_size = window_size
        self.output = output
        self.accuracy_attribute = output
        self.emit_partial = emit_partial
        self._stats = RollingWindowStats(resum_interval)

    def _sync_rolling_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            self._stats.set_metrics(None, None)
        else:
            self._stats.set_metrics(obs.rolling_resums, obs.rolling_drift)

    def _advance(self, tup: UncertainTuple) -> UncertainTuple | None:
        """Slide the window by one tuple; return the output tuple, if any."""
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        if not isinstance(dist, GaussianDistribution):
            raise StreamError(
                f"SlidingGaussianAverage needs Gaussian attributes, got "
                f"{type(dist).__name__}"
            )
        stats = self._stats
        stats.push(dist.mu, dist.sigma2, field.sample_size)
        if stats.count > self.window_size:
            stats.evict_oldest()

        k = stats.count
        if k < self.window_size and not self.emit_partial:
            return None
        avg = GaussianDistribution(
            stats.mean_sum / k, stats.var_sum / (k * k)
        )
        attributes = dict(tup.attributes)
        attributes[self.output] = DfSized(avg, stats.df_size)
        return tup.with_attributes(attributes)

    def process(self, tup: UncertainTuple) -> None:
        out = self._advance(tup)
        if out is not None:
            self.emit(out)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                self._advance_columns(tuples, column)
                return
        advance = self._advance
        self.emit_many(
            [out for out in map(advance, tuples) if out is not None]
        )

    def _advance_columns(
        self, batch: ColumnarBatch, column: GaussianDfColumn
    ) -> None:
        """Slide over ``(mu, sigma2, n)`` columns without materializing.

        The rolling sums are fed in the exact per-tuple order (no
        vectorized re-association), so emitted values are bit-identical
        to the per-tuple path.
        """
        stats = self._stats
        window = self.window_size
        mus = column.mu.tolist()
        sigma2s = column.sigma2.tolist()
        sizes = column.sizes.tolist()
        out_mu: list[float] = []
        out_var: list[float] = []
        out_size: list[int] = []
        kept = None if self.emit_partial else []
        for i, mu in enumerate(mus):
            size = sizes[i]
            stats.push(mu, sigma2s[i], None if size == EXACT_SIZE else size)
            if stats.count > window:
                stats.evict_oldest()
            k = stats.count
            if kept is not None:
                if k < window:
                    continue
                kept.append(i)
            avg_mu = stats.mean_sum / k
            avg_var = stats.var_sum / (k * k)
            if avg_var < 0.0 or not (
                math.isfinite(avg_mu) and math.isfinite(avg_var)
            ):
                GaussianDistribution(avg_mu, avg_var)  # canonical error
            df = stats.df_size
            out_mu.append(avg_mu)
            out_var.append(avg_var)
            out_size.append(EXACT_SIZE if df is None else df)
        base = batch if kept is None else batch.take(kept)
        self.emit_many(
            base.with_column(
                self.output,
                GaussianDfColumn(
                    np.asarray(out_mu, dtype=np.float64),
                    np.asarray(out_var, dtype=np.float64),
                    np.asarray(out_size, dtype=np.int64),
                ),
            )
        )

    def state_bytes(self) -> int:
        return self._stats.nbytes

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        return _window_lineage(tup, self.attribute, self.output)


def _window_lineage(
    tup: UncertainTuple, attribute: str, output: str
) -> dict[str, object]:
    """Lineage of a windowed aggregate from the *emitted* tuple alone.

    The emitted tuple still carries the newest window member under
    ``attribute`` and the aggregate under ``output``, whose Lemma-3
    ``sample_size`` is the window's minimum — so the de facto size is
    readable without touching operator state (which would be stale for
    all but the last tuple of a batched ``emit_many``).
    """
    out = tup.attributes.get(output)
    df_size = out.sample_size if isinstance(out, DfSized) else None
    field = tup.attributes.get(attribute)
    newest = field.sample_size if isinstance(field, DfSized) else None
    return {
        "kind": "window",
        "inputs": {attribute: newest},
        "df_size": df_size,
        "min_input": (
            attribute
            if df_size is not None and newest == df_size
            else None
        ),
    }


_SCALAR_AGGS = ("avg", "sum", "count", "min", "max")


def _aggregate_value(stats: RollingWindowStats, agg: str) -> object:
    """Aggregate value of one window from its rolling statistics.

    Shared by :class:`WindowAggregate`, :class:`TimeWindowAggregate`,
    and :class:`~repro.streams.groupby.GroupedAggregate` — the moment
    algebra (sum/avg propagate mean and variance under independence,
    with the window's Lemma-3 minimum sample size) is identical across
    the three, only the eviction policy differs.
    """
    k = stats.count
    if agg == "count":
        return float(k)
    if agg == "min":
        return stats.min_mean
    if agg == "max":
        return stats.max_mean
    df_size = stats.df_size
    if agg == "sum":
        return DfSized(
            GaussianDistribution(stats.mean_sum, stats.var_sum), df_size
        )
    return DfSized(
        GaussianDistribution(stats.mean_sum / k, stats.var_sum / (k * k)),
        df_size,
    )


class WindowAggregate(Operator):
    """Generic count-based sliding aggregate over attribute means.

    Works on any distribution-valued or numeric attribute by aggregating
    the per-tuple expected values.  ``avg``/``sum`` additionally propagate
    variance (independence assumption), emitting a Gaussian approximation
    justified by the CLT for wide windows; ``min``/``max``/``count`` emit
    deterministic values.

    Every slide is O(1) amortized: sums are compensated running sums
    with a drift guard, ``min``/``max`` use monotonic deques, and the
    Lemma-3 minimum sample size is tracked by counter
    (:mod:`repro.streams.rolling`) — no per-tuple list rebuilds.
    """

    rolling_metrics = True
    memory_metrics = True

    def __init__(
        self,
        attribute: str,
        window_size: int,
        agg: str = "avg",
        output: str | None = None,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
    ) -> None:
        super().__init__()
        if agg not in _SCALAR_AGGS:
            raise StreamError(
                f"unknown aggregate {agg!r}; expected one of {_SCALAR_AGGS}"
            )
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        self.attribute = attribute
        self.window_size = window_size
        self.agg = agg
        self.output = output if output is not None else agg
        self.accuracy_attribute = self.output
        self._stats = RollingWindowStats(
            resum_interval, track_extrema=agg in ("min", "max")
        )

    def _sync_rolling_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            self._stats.set_metrics(None, None)
        else:
            self._stats.set_metrics(obs.rolling_resums, obs.rolling_drift)

    def _advance(self, tup: UncertainTuple) -> UncertainTuple:
        """Slide the window by one tuple and build the aggregate tuple."""
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        stats = self._stats
        stats.push(dist.mean(), dist.variance(), field.sample_size)
        if stats.count > self.window_size:
            stats.evict_oldest()
        attributes = dict(tup.attributes)
        attributes[self.output] = _aggregate_value(stats, self.agg)
        return tup.with_attributes(attributes)

    def process(self, tup: UncertainTuple) -> None:
        self.emit(self._advance(tup))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                # Gaussian mean()/variance() are mu/sigma2, so the
                # columns feed the rolling sums directly, in order.
                stats = self._stats
                window = self.window_size
                agg = self.agg
                outputs = []
                for mu, sigma2, size in zip(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                ):
                    stats.push(
                        mu, sigma2, None if size == EXACT_SIZE else size
                    )
                    if stats.count > window:
                        stats.evict_oldest()
                    outputs.append(_aggregate_value(stats, agg))
                self.emit_many(
                    tuples.with_column(self.output, _infer_column(outputs))
                )
                return
        self.emit_many([self._advance(tup) for tup in tuples])

    def state_bytes(self) -> int:
        return self._stats.nbytes

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        return _window_lineage(tup, self.attribute, self.output)


class CollectSink(Operator):
    """Terminal operator collecting every tuple it receives.

    Batches arrive either as tuple lists or as
    :class:`~repro.streams.columnar.ColumnarBatch` blocks; both are
    stored as received, so a columnar pipeline never materializes
    per-tuple objects just to be collected.  :attr:`results` flattens to
    ``list[UncertainTuple]`` on demand (and stays a plain mutable list
    for callers that extend it, e.g. the sharded merge);
    :meth:`columnar_result` hands back the column blocks for transport.
    """

    def __init__(self) -> None:
        super().__init__()
        self._chunks: list[object] = []
        self._flat: list[UncertainTuple] = []
        self._flat_count = 0

    @property
    def results(self) -> list[UncertainTuple]:
        """Everything collected so far, as materialized tuples."""
        flat = self._flat
        chunks = self._chunks
        for i in range(self._flat_count, len(chunks)):
            chunk = chunks[i]
            if isinstance(chunk, UncertainTuple):
                flat.append(chunk)
            else:
                flat.extend(chunk)
        self._flat_count = len(chunks)
        return flat

    def columnar_result(self) -> "ColumnarBatch | None":
        """Collected tuples as one columnar batch, if representable."""
        chunks = self._chunks
        if chunks and all(
            isinstance(chunk, ColumnarBatch) for chunk in chunks
        ):
            try:
                return ColumnarBatch.concat(chunks)
            except StreamError:
                pass
        return as_columnar(self.results)

    def process(self, tup: UncertainTuple) -> None:
        self._chunks.append(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if isinstance(tuples, ColumnarBatch):
            self._chunks.append(tuples)
        else:
            self._chunks.append(list(tuples))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterable[UncertainTuple]:
        return iter(self.results)


class CountingSink(Operator):
    """Terminal operator that only counts tuples (throughput benchmarks)."""

    def __init__(self) -> None:
        super().__init__()
        self.count = 0

    def process(self, tup: UncertainTuple) -> None:
        self.count += 1

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        self.count += len(tuples)


class TimeWindowAggregate(Operator):
    """Time-based sliding aggregate over attribute means.

    Keeps the tuples whose timestamps fall within ``duration`` of the
    newest arrival and emits the updated aggregate per arrival.  Tuples
    must carry non-decreasing timestamps.  Moment propagation matches
    :class:`WindowAggregate` (sum/avg emit Gaussian approximations with
    the window's minimum sample size; count/min/max are deterministic),
    as does the cost model: O(1) amortized per slide on the rolling
    kernels of :mod:`repro.streams.rolling`.
    """

    rolling_metrics = True
    memory_metrics = True

    def __init__(
        self,
        attribute: str,
        duration: float,
        agg: str = "avg",
        output: str | None = None,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
    ) -> None:
        super().__init__()
        if agg not in _SCALAR_AGGS:
            raise StreamError(
                f"unknown aggregate {agg!r}; expected one of {_SCALAR_AGGS}"
            )
        if duration <= 0:
            raise StreamError(f"duration must be > 0, got {duration}")
        self.attribute = attribute
        self.duration = duration
        self.agg = agg
        self.output = output if output is not None else agg
        self.accuracy_attribute = self.output
        self._stats = RollingWindowStats(
            resum_interval, track_extrema=agg in ("min", "max")
        )

    def _sync_rolling_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            self._stats.set_metrics(None, None)
        else:
            self._stats.set_metrics(obs.rolling_resums, obs.rolling_drift)

    def process(self, tup: UncertainTuple) -> None:
        if tup.timestamp is None:
            raise StreamError(
                "TimeWindowAggregate needs timestamped tuples"
            )
        stats = self._stats
        newest = stats.newest_timestamp
        if newest is not None and tup.timestamp < newest:
            raise StreamError(
                "timestamps must be non-decreasing: "
                f"{tup.timestamp} after {newest}"
            )
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        stats.push(
            dist.mean(),
            dist.variance(),
            field.sample_size,
            timestamp=tup.timestamp,
        )
        stats.evict_expired(tup.timestamp - self.duration)
        attributes = dict(tup.attributes)
        attributes[self.output] = _aggregate_value(stats, self.agg)
        self.emit(tup.with_attributes(attributes))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if isinstance(tuples, ColumnarBatch) and isinstance(
            tuples.timestamps, np.ndarray
        ):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                stats = self._stats
                duration = self.duration
                agg = self.agg
                outputs = []
                for mu, sigma2, size, ts in zip(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                    tuples.timestamps.tolist(),
                ):
                    newest = stats.newest_timestamp
                    if newest is not None and ts < newest:
                        raise StreamError(
                            "timestamps must be non-decreasing: "
                            f"{ts} after {newest}"
                        )
                    stats.push(
                        mu,
                        sigma2,
                        None if size == EXACT_SIZE else size,
                        timestamp=ts,
                    )
                    stats.evict_expired(ts - duration)
                    outputs.append(_aggregate_value(stats, agg))
                self.emit_many(
                    tuples.with_column(self.output, _infer_column(outputs))
                )
                return
        super().process_many(tuples)

    def state_bytes(self) -> int:
        return self._stats.nbytes

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        return _window_lineage(tup, self.attribute, self.output)


class RollingLearnOperator(Operator):
    """Sliding-window distribution learning in O(1) amortized per slide.

    Consumes raw numeric observations and maintains a learner fit over
    the most recent ``window_size`` of them through the incremental
    hooks (:meth:`~repro.learning.base.Learner.partial_add` /
    :meth:`~repro.learning.base.Learner.partial_evict`): each slide
    updates sufficient statistics instead of refitting from scratch.
    Per emitted tuple the ``output`` attribute carries the learned
    distribution (a :class:`~repro.core.dfsample.DfSized` whose sample
    size is the window fill ``k``) and ``accuracy_output`` carries the
    Lemma 1/2 accuracy (:class:`~repro.core.accuracy.AccuracyInfo`) of
    that fit at ``confidence``.

    ``learner`` is a registry name (resolved through
    :func:`~repro.learning.registry.make_rolling_learner`, which rejects
    learners without incremental support) or a learner instance with
    ``supports_partial``.  When the learner is ``partial_vectorizable``,
    batches take the vectorized Theorem-1 path
    (:func:`~repro.core.analytic.accuracy_from_moments`) — element-wise
    identical to the per-tuple path.
    """

    rolling_metrics = True
    memory_metrics = True

    def __init__(
        self,
        attribute: str,
        window_size: int,
        learner: object = "gaussian",
        output: str = "learned",
        accuracy_output: str | None = "accuracy",
        confidence: float = 0.95,
        emit_partial: bool = True,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
        **learner_kwargs: object,
    ) -> None:
        super().__init__()
        if window_size < 2:
            raise StreamError(
                f"rolling learning needs window size >= 2, got {window_size}"
            )
        if not 0.0 < confidence < 1.0:
            raise StreamError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if isinstance(learner, str):
            from repro.learning.registry import make_rolling_learner

            learner = make_rolling_learner(learner, **learner_kwargs)
        else:
            if learner_kwargs:
                raise StreamError(
                    "learner keyword arguments need a learner name, "
                    "not an instance"
                )
            if not getattr(learner, "supports_partial", False):
                raise StreamError(
                    f"{type(learner).__name__} does not support "
                    f"incremental (partial_add/partial_evict) learning"
                )
        self.attribute = attribute
        self.window_size = window_size
        self.learner = learner
        self.output = output
        self.accuracy_output = accuracy_output
        self.accuracy_attribute = (
            accuracy_output if accuracy_output is not None else output
        )
        self.confidence = confidence
        self.emit_partial = emit_partial
        # Self-evicting learners (bounded-memory sketch synopses) expire
        # their own oldest content, so the operator keeps a fill counter
        # instead of an O(window) value buffer — the buffer would defeat
        # the whole memory bound.
        self._window: CountWindow[float] | None = (
            None
            if getattr(learner, "partial_self_evicting", False)
            else CountWindow(window_size)
        )
        self._fill = 0
        self._state = learner.partial_begin(resum_interval)

    def _sync_rolling_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            self._state.set_metrics(None, None)
        else:
            self._state.set_metrics(obs.rolling_resums, obs.rolling_drift)

    def _slide(self, tup: UncertainTuple) -> int | None:
        """Add the observation, evict the expired one; emit fill or None."""
        value = tup.value(self.attribute)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StreamError(
                f"RollingLearnOperator needs raw numeric observations, "
                f"attribute {self.attribute!r} is {type(value).__name__}"
            )
        value = float(value)
        self.learner.partial_add(self._state, value)
        if self._window is not None:
            evicted = self._window.add(value)
            if evicted is not None:
                self.learner.partial_evict(self._state, evicted)
            k = len(self._window)
            full = self._window.is_full
        else:
            if self._fill >= self.window_size:
                self.learner.partial_evict(self._state, None)
            else:
                self._fill += 1
            k = self._fill
            full = k >= self.window_size
        if k < 2:
            return None
        if not self.emit_partial and not full:
            return None
        return k

    def _advance(self, tup: UncertainTuple) -> UncertainTuple | None:
        k = self._slide(tup)
        if k is None:
            return None
        attributes = dict(tup.attributes)
        attributes[self.output] = DfSized(
            self.learner.partial_distribution(self._state), k
        )
        if self.accuracy_output is not None:
            attributes[self.accuracy_output] = self.learner.partial_accuracy(
                self._state, self.confidence
            )
        return tup.with_attributes(attributes)

    def process(self, tup: UncertainTuple) -> None:
        out = self._advance(tup)
        if out is not None:
            self.emit(out)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if self.accuracy_output is None or not self.learner.partial_vectorizable:
            advance = self._advance
            self.emit_many(
                [out for out in map(advance, tuples) if out is not None]
            )
            return
        # Vectorized path: collect the per-slide moments, then build all
        # accuracy infos in one Theorem-1 pass (element-wise identical
        # to the scalar path — same memoized quantiles, same FP order).
        staged: list[tuple[UncertainTuple, dict[str, object]]] = []
        moments: list[tuple[float, float, int]] = []
        for tup in tuples:
            k = self._slide(tup)
            if k is None:
                continue
            attributes = dict(tup.attributes)
            attributes[self.output] = DfSized(
                self.learner.partial_distribution(self._state), k
            )
            staged.append((tup, attributes))
            moments.append(self.learner.partial_moments(self._state))
        if not staged:
            self.emit_many([])
            return
        means, variances, sizes = zip(*moments)
        infos = accuracy_from_moments(
            means, variances, sizes, self.confidence
        )
        outs = []
        for (tup, attributes), info in zip(staged, infos):
            attributes[self.accuracy_output] = info
            outs.append(tup.with_attributes(attributes))
        self.emit_many(outs)

    def state_bytes(self) -> int:
        """Learner state plus (for buffering learners) the value window."""
        total = getattr(self._state, "nbytes", 0) or 0
        if self._window is not None:
            # deque of boxed floats: ~88 bytes per buffered observation.
            total += 64 + len(self._window) * 88
        return total

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        learned = tup.attributes.get(self.output)
        fill = (
            learned.sample_size if isinstance(learned, DfSized) else None
        )
        return {
            "kind": "learned-window",
            "inputs": {self.attribute: fill},
            "df_size": fill,
            "min_input": self.attribute,
            "window_fill": fill,
        }
