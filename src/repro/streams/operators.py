"""Push-based stream operators.

Operators form a linear pipeline (fan-in/fan-out are expressed by running
several pipelines over the same source).  Each operator receives a tuple,
does its work, and pushes zero or more tuples downstream; ``flush``
propagates end-of-stream so windowed operators can drain.

The two filters embody the paper's two predicate styles:

* :class:`ProbabilisticFilter` — classic probability-threshold semantics:
  the tuple's membership probability is multiplied by P[predicate].
* :class:`SignificanceFilter` — the paper's significance predicates with
  coupled error-rate control (§IV): TRUE keeps the tuple, FALSE drops it,
  and UNSURE is kept or dropped by policy.
"""

from __future__ import annotations

import abc
from collections import Counter, deque
from collections.abc import Callable, Iterable, Sequence
from time import perf_counter

from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.dfsample import DfSized
from repro.core.predicates import SignificancePredicate
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.obs.instrument import OperatorMetrics
from repro.obs.metrics import MetricsRegistry
from repro.streams.tuples import UncertainTuple

__all__ = [
    "Operator",
    "Select",
    "Project",
    "Derive",
    "ProbabilisticFilter",
    "SignificanceFilter",
    "SlidingGaussianAverage",
    "WindowAggregate",
    "TimeWindowAggregate",
    "CollectSink",
    "CountingSink",
]


class Operator(abc.ABC):
    """Base class: process tuples, push results to the downstream operator.

    Entry points (:meth:`receive`, :meth:`receive_many`, :meth:`emit`,
    :meth:`emit_many`, :meth:`flush`) double as observability hooks: when
    a :class:`~repro.obs.metrics.MetricsRegistry` is attached (via
    :meth:`attach_metrics`, usually through ``Pipeline(registry=...)``)
    they record tuples in/out, wall time per call, and batch sizes.  With
    no registry attached each hook is a single attribute check, so the
    uninstrumented hot path is unchanged.

    Subclasses implement :meth:`process` (one tuple) and may override
    :meth:`process_many` (one batch) — not the ``receive*`` entry points,
    which own the instrumentation.
    """

    #: Attribute whose accuracy the operator reports on emitted tuples
    #: (an :class:`~repro.core.accuracy.AccuracyInfo` or a
    #: :class:`~repro.core.dfsample.DfSized`).  ``None`` disables the
    #: interval-width/sample-size histograms.
    accuracy_attribute: str | None = None

    def __init__(self) -> None:
        self._downstream: Operator | None = None
        self._obs: OperatorMetrics | None = None

    def connect(self, downstream: "Operator") -> "Operator":
        """Attach (and return) the downstream operator, enabling chaining."""
        self._downstream = downstream
        return downstream

    def attach_metrics(
        self, registry: MetricsRegistry, name: str | None = None
    ) -> OperatorMetrics:
        """Start recording this operator's metrics into ``registry``."""
        if name is None:
            name = type(self).__name__.lstrip("_")
        self._obs = OperatorMetrics(registry, name, self.accuracy_attribute)
        return self._obs

    def detach_metrics(self) -> None:
        """Stop recording metrics (already-recorded values are kept)."""
        self._obs = None

    def reseed(self, seed: object) -> None:
        """Replace internal randomness from a ``numpy`` seed sequence.

        Sharded execution calls this with a distinct
        ``np.random.SeedSequence`` per operator per shard
        (:meth:`Pipeline.reseed`).  Operators holding a generator should
        override it with ``self._rng = np.random.default_rng(seed)``;
        the default is a no-op because most operators are deterministic.
        """

    def emit(self, tup: UncertainTuple) -> None:
        obs = self._obs
        if obs is not None:
            obs.tuples_out.inc()
            if obs.accuracy_attribute is not None:
                obs.observe_accuracy(tup)
        if self._downstream is not None:
            self._downstream.receive(tup)

    def emit_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Push a whole batch downstream (batch-aware operators)."""
        if not tuples:
            return
        obs = self._obs
        if obs is not None:
            obs.tuples_out.inc(len(tuples))
            if obs.accuracy_attribute is not None:
                observe = obs.observe_accuracy
                for tup in tuples:
                    observe(tup)
        if self._downstream is not None:
            self._downstream.receive_many(tuples)

    def receive(self, tup: UncertainTuple) -> None:
        obs = self._obs
        if obs is None:
            self.process(tup)
            return
        obs.tuples_in.inc()
        start = perf_counter()
        try:
            self.process(tup)
        finally:
            obs.process_seconds.record(perf_counter() - start)

    def receive_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Handle a batch of tuples (``Pipeline.run_batched``)."""
        obs = self._obs
        if obs is None:
            self.process_many(tuples)
            return
        obs.tuples_in.inc(len(tuples))
        obs.batch_sizes.observe(len(tuples))
        start = perf_counter()
        try:
            self.process_many(tuples)
        finally:
            obs.batch_seconds.record(perf_counter() - start)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Batch-processing hook behind :meth:`receive_many`.

        The default falls back to per-tuple :meth:`process`, but collects
        everything the operator emits and hands it downstream as one
        batch, so batch-aware operators further down the chain still see
        batches.  Operators are order-preserving, hence the sink contents
        are identical to the per-tuple path.
        """
        downstream = self._downstream
        if downstream is None:
            for tup in tuples:
                self.process(tup)
            return
        collector = _BatchCollector()
        self._downstream = collector
        try:
            for tup in tuples:
                self.process(tup)
        finally:
            self._downstream = downstream
        if collector.batch:
            downstream.receive_many(collector.batch)

    @abc.abstractmethod
    def process(self, tup: UncertainTuple) -> None:
        """Handle one input tuple (call :meth:`emit` for each output)."""

    def flush(self) -> None:
        """Propagate end-of-stream; override ``on_flush`` to drain state."""
        obs = self._obs
        if obs is None:
            self.on_flush()
        else:
            start = perf_counter()
            try:
                self.on_flush()
            finally:
                obs.flush_seconds.record(perf_counter() - start)
        if self._downstream is not None:
            self._downstream.flush()

    def on_flush(self) -> None:
        """Hook for subclasses with buffered state."""


class _BatchCollector(Operator):
    """Internal sink that buffers emitted tuples during a batch step."""

    def __init__(self) -> None:
        super().__init__()
        self.batch: list[UncertainTuple] = []

    def process(self, tup: UncertainTuple) -> None:
        self.batch.append(tup)


class Select(Operator):
    """Keeps tuples for which ``predicate(tuple)`` is truthy."""

    def __init__(self, predicate: Callable[[UncertainTuple], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def process(self, tup: UncertainTuple) -> None:
        if self.predicate(tup):
            self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        predicate = self.predicate
        self.emit_many([tup for tup in tuples if predicate(tup)])


class Project(Operator):
    """Keeps only the named attributes."""

    def __init__(self, names: Sequence[str]) -> None:
        super().__init__()
        if not names:
            raise StreamError("projection needs at least one attribute")
        self.names = tuple(names)

    def process(self, tup: UncertainTuple) -> None:
        projected = {name: tup.value(name) for name in self.names}
        self.emit(tup.with_attributes(projected))


class Derive(Operator):
    """Adds a computed attribute ``name = fn(tuple)``."""

    def __init__(
        self, name: str, fn: Callable[[UncertainTuple], object]
    ) -> None:
        super().__init__()
        self.name = name
        self.fn = fn

    def process(self, tup: UncertainTuple) -> None:
        attributes = dict(tup.attributes)
        attributes[self.name] = self.fn(tup)
        self.emit(tup.with_attributes(attributes))


class ProbabilisticFilter(Operator):
    """Probability-threshold filtering (possible-world semantics).

    ``probability_fn(tuple)`` returns P[predicate holds] for the tuple; the
    output tuple's membership probability is scaled by it.  Tuples whose
    resulting probability falls below ``threshold`` are dropped (the
    default threshold 0 keeps every tuple with positive probability —
    plain possible-world semantics).
    """

    def __init__(
        self,
        probability_fn: Callable[[UncertainTuple], float],
        threshold: float = 0.0,
    ) -> None:
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise StreamError(
                f"probability threshold must be in [0,1], got {threshold}"
            )
        self.probability_fn = probability_fn
        self.threshold = threshold

    def process(self, tup: UncertainTuple) -> None:
        q = float(self.probability_fn(tup))
        if not 0.0 <= q <= 1.0:
            raise StreamError(
                f"predicate probability must be in [0,1], got {q}"
            )
        scaled = tup.scaled(q)
        if scaled.probability > self.threshold:
            self.emit(scaled)


class SignificanceFilter(Operator):
    """Filters by a significance predicate with coupled error-rate control.

    ``predicate_factory(tuple)`` binds the test to the tuple's fields; the
    coupled decision keeps TRUE tuples, drops FALSE ones, and treats UNSURE
    per ``keep_unsure``.  Decisions are counted for observability.
    """

    def __init__(
        self,
        predicate_factory: Callable[[UncertainTuple], SignificancePredicate],
        alpha1: float = 0.05,
        alpha2: float = 0.05,
        keep_unsure: bool = False,
    ) -> None:
        super().__init__()
        self.predicate_factory = predicate_factory
        self.alpha1 = alpha1
        self.alpha2 = alpha2
        self.keep_unsure = keep_unsure
        self.decisions: Counter[ThreeValued] = Counter()

    def process(self, tup: UncertainTuple) -> None:
        predicate = self.predicate_factory(tup)
        outcome = coupled_tests(predicate, self.alpha1, self.alpha2)
        self.decisions[outcome.value] += 1
        keep = outcome.value is ThreeValued.TRUE or (
            outcome.value is ThreeValued.UNSURE and self.keep_unsure
        )
        if keep:
            self.emit(tup)


class SlidingGaussianAverage(Operator):
    """Count-based sliding-window AVG over a Gaussian attribute (§V-C).

    Maintains running sums of the window members' means and variances, so
    each arrival costs O(1); the result attribute is the exact Gaussian of
    the average of independent Gaussians, tagged with the window's minimum
    input sample size (Lemma 3: the d.f. sample size of the AVG).
    """

    def __init__(
        self,
        attribute: str,
        window_size: int,
        output: str = "avg",
        emit_partial: bool = True,
    ) -> None:
        super().__init__()
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        self.attribute = attribute
        self.window_size = window_size
        self.output = output
        self.accuracy_attribute = output
        self.emit_partial = emit_partial
        self._members: deque[tuple[float, float, int | None]] = deque()
        self._mu_sum = 0.0
        self._var_sum = 0.0
        self._size_counts: Counter[int] = Counter()
        self._exact_count = 0

    def _window_sample_size(self) -> int | None:
        if self._size_counts:
            return min(self._size_counts)
        return None

    def _advance(self, tup: UncertainTuple) -> UncertainTuple | None:
        """Slide the window by one tuple; return the output tuple, if any."""
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        if not isinstance(dist, GaussianDistribution):
            raise StreamError(
                f"SlidingGaussianAverage needs Gaussian attributes, got "
                f"{type(dist).__name__}"
            )
        self._members.append((dist.mu, dist.sigma2, field.sample_size))
        self._mu_sum += dist.mu
        self._var_sum += dist.sigma2
        if field.sample_size is None:
            self._exact_count += 1
        else:
            self._size_counts[field.sample_size] += 1

        if len(self._members) > self.window_size:
            old_mu, old_var, old_n = self._members.popleft()
            self._mu_sum -= old_mu
            self._var_sum -= old_var
            if old_n is None:
                self._exact_count -= 1
            else:
                self._size_counts[old_n] -= 1
                if self._size_counts[old_n] == 0:
                    del self._size_counts[old_n]

        k = len(self._members)
        if k < self.window_size and not self.emit_partial:
            return None
        avg = GaussianDistribution(self._mu_sum / k, self._var_sum / (k * k))
        attributes = dict(tup.attributes)
        attributes[self.output] = DfSized(avg, self._window_sample_size())
        return tup.with_attributes(attributes)

    def process(self, tup: UncertainTuple) -> None:
        out = self._advance(tup)
        if out is not None:
            self.emit(out)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        advance = self._advance
        self.emit_many(
            [out for out in map(advance, tuples) if out is not None]
        )


_SCALAR_AGGS = ("avg", "sum", "count", "min", "max")


class WindowAggregate(Operator):
    """Generic count-based sliding aggregate over attribute means.

    Works on any distribution-valued or numeric attribute by aggregating
    the per-tuple expected values.  ``avg``/``sum`` additionally propagate
    variance (independence assumption), emitting a Gaussian approximation
    justified by the CLT for wide windows; ``min``/``max``/``count`` emit
    deterministic values.
    """

    def __init__(
        self,
        attribute: str,
        window_size: int,
        agg: str = "avg",
        output: str | None = None,
    ) -> None:
        super().__init__()
        if agg not in _SCALAR_AGGS:
            raise StreamError(
                f"unknown aggregate {agg!r}; expected one of {_SCALAR_AGGS}"
            )
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        self.attribute = attribute
        self.window_size = window_size
        self.agg = agg
        self.output = output if output is not None else agg
        self.accuracy_attribute = self.output
        self._members: deque[tuple[float, float, int | None]] = deque()

    def _advance(self, tup: UncertainTuple) -> UncertainTuple:
        """Slide the window by one tuple and build the aggregate tuple."""
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        self._members.append(
            (dist.mean(), dist.variance(), field.sample_size)
        )
        if len(self._members) > self.window_size:
            self._members.popleft()

        means = [m for m, _, _ in self._members]
        variances = [v for _, v, _ in self._members]
        sizes = [n for _, _, n in self._members if n is not None]
        df_size = min(sizes) if sizes else None
        k = len(self._members)

        value: object
        if self.agg == "count":
            value = float(k)
        elif self.agg == "min":
            value = min(means)
        elif self.agg == "max":
            value = max(means)
        elif self.agg == "sum":
            value = DfSized(
                GaussianDistribution(sum(means), sum(variances)), df_size
            )
        else:  # avg
            value = DfSized(
                GaussianDistribution(
                    sum(means) / k, sum(variances) / (k * k)
                ),
                df_size,
            )
        attributes = dict(tup.attributes)
        attributes[self.output] = value
        return tup.with_attributes(attributes)

    def process(self, tup: UncertainTuple) -> None:
        self.emit(self._advance(tup))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        self.emit_many([self._advance(tup) for tup in tuples])


class CollectSink(Operator):
    """Terminal operator collecting every tuple it receives."""

    def __init__(self) -> None:
        super().__init__()
        self.results: list[UncertainTuple] = []

    def process(self, tup: UncertainTuple) -> None:
        self.results.append(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        self.results.extend(tuples)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterable[UncertainTuple]:
        return iter(self.results)


class CountingSink(Operator):
    """Terminal operator that only counts tuples (throughput benchmarks)."""

    def __init__(self) -> None:
        super().__init__()
        self.count = 0

    def process(self, tup: UncertainTuple) -> None:
        self.count += 1

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        self.count += len(tuples)


class TimeWindowAggregate(Operator):
    """Time-based sliding aggregate over attribute means.

    Keeps the tuples whose timestamps fall within ``duration`` of the
    newest arrival and emits the updated aggregate per arrival.  Tuples
    must carry non-decreasing timestamps.  Moment propagation matches
    :class:`WindowAggregate` (sum/avg emit Gaussian approximations with
    the window's minimum sample size; count/min/max are deterministic).
    """

    def __init__(
        self,
        attribute: str,
        duration: float,
        agg: str = "avg",
        output: str | None = None,
    ) -> None:
        super().__init__()
        if agg not in _SCALAR_AGGS:
            raise StreamError(
                f"unknown aggregate {agg!r}; expected one of {_SCALAR_AGGS}"
            )
        if duration <= 0:
            raise StreamError(f"duration must be > 0, got {duration}")
        self.attribute = attribute
        self.duration = duration
        self.agg = agg
        self.output = output if output is not None else agg
        self.accuracy_attribute = self.output
        self._members: deque[tuple[float, float, float, int | None]] = deque()

    def process(self, tup: UncertainTuple) -> None:
        if tup.timestamp is None:
            raise StreamError(
                "TimeWindowAggregate needs timestamped tuples"
            )
        if self._members and tup.timestamp < self._members[-1][0]:
            raise StreamError(
                "timestamps must be non-decreasing: "
                f"{tup.timestamp} after {self._members[-1][0]}"
            )
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        self._members.append(
            (tup.timestamp, dist.mean(), dist.variance(), field.sample_size)
        )
        cutoff = tup.timestamp - self.duration
        while self._members and self._members[0][0] <= cutoff:
            self._members.popleft()

        means = [m for _, m, _, _ in self._members]
        variances = [v for _, _, v, _ in self._members]
        sizes = [n for _, _, _, n in self._members if n is not None]
        df_size = min(sizes) if sizes else None
        k = len(self._members)

        value: object
        if self.agg == "count":
            value = float(k)
        elif self.agg == "min":
            value = min(means)
        elif self.agg == "max":
            value = max(means)
        elif self.agg == "sum":
            value = DfSized(
                GaussianDistribution(sum(means), sum(variances)), df_size
            )
        else:  # avg
            value = DfSized(
                GaussianDistribution(
                    sum(means) / k, sum(variances) / (k * k)
                ),
                df_size,
            )
        attributes = dict(tup.attributes)
        attributes[self.output] = value
        self.emit(tup.with_attributes(attributes))
