"""Throughput measurement for the stream engine (paper §V-C, Figures 5(c,f)).

The paper measures the maximum rate at which the system handles incoming
tuples under different amounts of per-tuple work (query processing only,
plus analytical accuracy, plus bootstraps, plus significance predicates).
:func:`measure_throughput` runs a pipeline over a pre-materialised tuple
list and reports tuples/second, taking the best of several repeats to
approximate the *maximum* throughput as the paper does.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

from repro.errors import StreamError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryRecorder
from repro.obs.trace import Tracer
from repro.streams.columnar import as_columnar
from repro.streams.engine import Pipeline
from repro.streams.tuples import UncertainTuple

__all__ = ["ThroughputMeter", "measure_throughput"]


class ThroughputMeter:
    """Accumulates (tuples, seconds) across runs and reports tuples/sec."""

    def __init__(self) -> None:
        self.tuples = 0
        self.seconds = 0.0

    def record(self, tuples: int, seconds: float) -> None:
        if tuples < 0 or seconds < 0:
            raise StreamError("tuples and seconds must be >= 0")
        self.tuples += tuples
        self.seconds += seconds

    @property
    def tuples_per_second(self) -> float:
        if self.seconds == 0.0:
            # Traffic measured in less time than the clock can resolve is
            # not the same thing as no traffic: report it as unboundedly
            # fast rather than a silent zero.
            return float("inf") if self.tuples > 0 else 0.0
        return self.tuples / self.seconds


def measure_throughput(
    pipeline_factory: Callable[[], Pipeline],
    tuples: Sequence[UncertainTuple],
    repeats: int = 3,
    batch_size: int | None = None,
    registry: MetricsRegistry | None = None,
    metrics_prefix: str = "pipeline",
    n_workers: int | None = None,
    n_shards: int | None = None,
    partition_by: object = None,
    shard_seed: int | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryRecorder | None = None,
    layout: str = "tuple",
) -> float:
    """Best-of-``repeats`` throughput of a pipeline over the given tuples.

    A fresh pipeline is built per repeat so windowed state never carries
    over between timing runs.  ``batch_size`` selects the batched
    execution path (:meth:`Pipeline.run_batched`); ``None`` measures the
    per-tuple path.  ``n_workers`` selects the sharded process-pool path
    (:meth:`Pipeline.run_sharded`, with ``n_shards`` / ``partition_by``
    / ``shard_seed`` passed through); one worker pool is created before
    timing and reused across repeats, and an untimed warm-up run absorbs
    process start-up and imports, so the measurement reflects
    steady-state throughput rather than ``spawn`` cost.

    ``registry`` requests a per-operator breakdown, ``tracer`` requests
    a span trace (+ accuracy provenance), and ``telemetry`` requests a
    frame series (SLO telemetry): after the timed repeats, one extra
    *instrumented* pass runs a fresh pipeline with the registry, tracer,
    and/or telemetry recorder attached (names under ``metrics_prefix``),
    so the observability overhead never contaminates the reported
    throughput.

    ``layout`` selects the batch representation fed to the pipeline:
    ``"tuple"`` (default) times the per-tuple list as-is, while
    ``"columnar"`` converts the source to a
    :class:`~repro.streams.columnar.ColumnarBatch` once, *outside* the
    timed region, so the measurement reflects columnar execution and
    transport rather than conversion cost.

    Raises :class:`StreamError` when no repeat produced a measurable
    elapsed time (tiny tuple lists on coarse clocks) — a successful call
    never returns ``0.0``.
    """
    if repeats < 1:
        raise StreamError(f"repeats must be >= 1, got {repeats}")
    if not tuples:
        raise StreamError("cannot measure throughput over zero tuples")
    if layout not in ("tuple", "columnar"):
        raise StreamError(
            f"layout must be 'tuple' or 'columnar', got {layout!r}"
        )
    if layout == "columnar":
        columnar = as_columnar(tuples)
        if columnar is None:
            raise StreamError(
                "layout='columnar' requires a uniform-layout tuple "
                "source; this one cannot be columnarized"
            )
        tuples = columnar

    pool = None
    if n_workers is not None:
        from repro.parallel.config import ParallelConfig
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(ParallelConfig(n_workers=n_workers))

    def _run_once(pipeline: Pipeline) -> None:
        if pool is not None:
            pipeline.run_sharded(
                tuples,
                n_shards=n_shards,
                partition_by=partition_by,
                batch_size=batch_size if batch_size is not None else 256,
                seed=shard_seed,
                pool=pool,
            )
        elif batch_size is None:
            pipeline.run(tuples)
        else:
            pipeline.run_batched(tuples, batch_size)

    try:
        if pool is not None:
            _run_once(pipeline_factory())  # untimed pool warm-up
        best = 0.0
        for _ in range(repeats):
            pipeline = pipeline_factory()
            start = time.perf_counter()
            _run_once(pipeline)
            elapsed = time.perf_counter() - start
            if elapsed <= 0.0:
                continue
            best = max(best, len(tuples) / elapsed)
        if best == 0.0:
            raise StreamError(
                f"all {repeats} repeats over {len(tuples)} tuples finished "
                "faster than the clock resolution; use more tuples (or more "
                "repeats) to get a measurable elapsed time"
            )
        if registry is not None or tracer is not None or telemetry is not None:
            pipeline = pipeline_factory()
            if registry is not None:
                pipeline.attach_metrics(registry, prefix=metrics_prefix)
            if tracer is not None:
                pipeline.attach_trace(tracer, prefix=metrics_prefix)
            if telemetry is not None:
                pipeline.attach_telemetry(telemetry, prefix=metrics_prefix)
            _run_once(pipeline)
        return best
    finally:
        if pool is not None:
            pool.close()
