"""Throughput measurement for the stream engine (paper §V-C, Figures 5(c,f)).

The paper measures the maximum rate at which the system handles incoming
tuples under different amounts of per-tuple work (query processing only,
plus analytical accuracy, plus bootstraps, plus significance predicates).
:func:`measure_throughput` runs a pipeline over a pre-materialised tuple
list and reports tuples/second, taking the best of several repeats to
approximate the *maximum* throughput as the paper does.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

from repro.errors import StreamError
from repro.streams.engine import Pipeline
from repro.streams.tuples import UncertainTuple

__all__ = ["ThroughputMeter", "measure_throughput"]


class ThroughputMeter:
    """Accumulates (tuples, seconds) across runs and reports tuples/sec."""

    def __init__(self) -> None:
        self.tuples = 0
        self.seconds = 0.0

    def record(self, tuples: int, seconds: float) -> None:
        if tuples < 0 or seconds < 0:
            raise StreamError("tuples and seconds must be >= 0")
        self.tuples += tuples
        self.seconds += seconds

    @property
    def tuples_per_second(self) -> float:
        if self.seconds == 0.0:
            return 0.0
        return self.tuples / self.seconds


def measure_throughput(
    pipeline_factory: Callable[[], Pipeline],
    tuples: Sequence[UncertainTuple],
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` throughput of a pipeline over the given tuples.

    A fresh pipeline is built per repeat so windowed state never carries
    over between timing runs.
    """
    if repeats < 1:
        raise StreamError(f"repeats must be >= 1, got {repeats}")
    if not tuples:
        raise StreamError("cannot measure throughput over zero tuples")
    best = 0.0
    for _ in range(repeats):
        pipeline = pipeline_factory()
        start = time.perf_counter()
        pipeline.run(tuples)
        elapsed = time.perf_counter() - start
        if elapsed <= 0.0:
            continue
        best = max(best, len(tuples) / elapsed)
    return best
