"""Stream sources.

Sources are plain iterables of :class:`UncertainTuple`; these helpers
build them from raw records and support replaying a recorded stream with
fresh timestamps.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.streams.tuples import Schema, UncertainTuple

__all__ = ["iter_source", "replay_source"]


def iter_source(
    records: Iterable[Mapping[str, object] | UncertainTuple],
    schema: Schema | None = None,
) -> Iterator[UncertainTuple]:
    """Yield tuples from records, optionally validating against a schema.

    Records may be ready-made tuples or attribute mappings (probability 1).
    """
    for record in records:
        if isinstance(record, UncertainTuple):
            tup = record
        else:
            tup = UncertainTuple(dict(record))
        if schema is not None:
            schema.validate(tup)
        yield tup


def replay_source(
    tuples: Iterable[UncertainTuple],
    start_time: float = 0.0,
    interval: float = 1.0,
) -> Iterator[UncertainTuple]:
    """Replay tuples with regenerated, evenly spaced timestamps."""
    t = start_time
    for tup in tuples:
        yield UncertainTuple(dict(tup.attributes), tup.probability, t)
        t += interval
