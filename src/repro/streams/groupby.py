"""Grouped aggregation over uncertain streams.

``GroupedAggregate`` maintains one count-based sliding window per group
key and emits, on every arrival, the updated aggregate tuple for that
group.  Aggregates over distribution-valued attributes follow the same
moment algebra as :class:`~repro.streams.operators.WindowAggregate`
(sum/avg propagate mean and variance under independence; the output
carries the group's minimum input sample size per Lemma 3), so accuracy
information can be attached downstream exactly as for any other field.
"""

from __future__ import annotations

from collections import deque

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.operators import Operator
from repro.streams.tuples import UncertainTuple

__all__ = ["GroupedAggregate"]

_AGGS = ("avg", "sum", "count", "min", "max")


class GroupedAggregate(Operator):
    """Per-group sliding aggregate: GROUP BY key over the last N tuples.

    Parameters
    ----------
    key:
        Grouping attribute (hashable values).
    attribute:
        The aggregated attribute (distribution-valued or numeric).
    window_size:
        Per-group count window.
    agg:
        One of avg / sum / count / min / max.
    output:
        Output attribute name (defaults to the aggregate name).
    emit_every:
        When True (default) an updated aggregate tuple is emitted per
        arrival; when False only :meth:`flush` emits one tuple per group
        (a "final answer per group" mode for bounded replays).
    """

    def __init__(
        self,
        key: str,
        attribute: str,
        window_size: int,
        agg: str = "avg",
        output: str | None = None,
        emit_every: bool = True,
    ) -> None:
        super().__init__()
        if agg not in _AGGS:
            raise StreamError(f"unknown aggregate {agg!r}; expected {_AGGS}")
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        self.key = key
        self.attribute = attribute
        self.window_size = window_size
        self.agg = agg
        self.output = output if output is not None else agg
        self.emit_every = emit_every
        self._groups: dict[object, deque[tuple[float, float, int | None]]]
        self._groups = {}

    def _aggregate(self, group_key: object) -> UncertainTuple:
        members = self._groups[group_key]
        means = [m for m, _, _ in members]
        variances = [v for _, v, _ in members]
        sizes = [n for _, _, n in members if n is not None]
        df_size = min(sizes) if sizes else None
        k = len(members)

        value: object
        if self.agg == "count":
            value = float(k)
        elif self.agg == "min":
            value = min(means)
        elif self.agg == "max":
            value = max(means)
        elif self.agg == "sum":
            value = DfSized(
                GaussianDistribution(sum(means), sum(variances)), df_size
            )
        else:  # avg
            value = DfSized(
                GaussianDistribution(sum(means) / k, sum(variances) / (k * k)),
                df_size,
            )
        return UncertainTuple({self.key: group_key, self.output: value})

    def process(self, tup: UncertainTuple) -> None:
        group_key = tup.value(self.key)
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        members = self._groups.setdefault(group_key, deque())
        members.append((dist.mean(), dist.variance(), field.sample_size))
        if len(members) > self.window_size:
            members.popleft()
        if self.emit_every:
            self.emit(self._aggregate(group_key))

    def on_flush(self) -> None:
        if not self.emit_every:
            for group_key in sorted(
                self._groups, key=lambda k: str(k)
            ):
                self.emit(self._aggregate(group_key))

    @property
    def group_count(self) -> int:
        return len(self._groups)
