"""Grouped aggregation over uncertain streams.

``GroupedAggregate`` maintains one count-based sliding window per group
key and emits, on every arrival, the updated aggregate tuple for that
group.  Aggregates over distribution-valued attributes follow the same
moment algebra as :class:`~repro.streams.operators.WindowAggregate`
(sum/avg propagate mean and variance under independence; the output
carries the group's minimum input sample size per Lemma 3), so accuracy
information can be attached downstream exactly as for any other field.
Each group's window rides the rolling kernels of
:mod:`repro.streams.rolling`, so every slide is O(1) amortized.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.errors import StreamError
from repro.streams.columnar import EXACT_SIZE, ColumnarBatch, _infer_column
from repro.streams.operators import Operator, _aggregate_value
from repro.streams.rolling import (
    DEFAULT_RESUM_INTERVAL,
    ChunkedWindowStats,
    RollingWindowStats,
)
from repro.streams.tuples import UncertainTuple

__all__ = ["GroupedAggregate"]

_AGGS = ("avg", "sum", "count", "min", "max")
_SYNOPSES = ("exact", "chunked")


class GroupedAggregate(Operator):
    """Per-group sliding aggregate: GROUP BY key over the last N tuples.

    Parameters
    ----------
    key:
        Grouping attribute (hashable values).
    attribute:
        The aggregated attribute (distribution-valued or numeric).
    window_size:
        Per-group count window.
    agg:
        One of avg / sum / count / min / max.
    output:
        Output attribute name (defaults to the aggregate name).
    emit_every:
        When True (default) an updated aggregate tuple is emitted per
        arrival; when False only :meth:`flush` emits one tuple per group
        (a "final answer per group" mode for bounded replays).
    resum_interval:
        Evictions between drift-guard re-sums of each group's running
        sums (see :class:`~repro.streams.rolling.RollingWindowStats`).
    expire_after:
        Global-arrival TTL: a group member expires once this many
        further tuples (of *any* key) have arrived, and a group whose
        window fully drains is reclaimed — state and all.  Without it,
        per-key state lives forever, which is unbounded under a
        churning key space.  ``None`` (default) keeps the historical
        keep-forever behavior.
    synopsis:
        ``"exact"`` (default) buffers every window member per group
        (:class:`~repro.streams.rolling.RollingWindowStats`, O(window)
        per key); ``"chunked"`` keeps bounded chunk statistics instead
        (:class:`~repro.streams.rolling.ChunkedWindowStats`, ~O(1) per
        key at a quantified staleness) — the memory mode for GROUP BY
        over very large key spaces (docs/SKETCHES.md).
    """

    rolling_metrics = True
    memory_metrics = True

    def __init__(
        self,
        key: str,
        attribute: str,
        window_size: int,
        agg: str = "avg",
        output: str | None = None,
        emit_every: bool = True,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
        expire_after: int | None = None,
        synopsis: str = "exact",
    ) -> None:
        super().__init__()
        if agg not in _AGGS:
            raise StreamError(f"unknown aggregate {agg!r}; expected {_AGGS}")
        if window_size < 1:
            raise StreamError(f"window size must be >= 1, got {window_size}")
        if expire_after is not None and expire_after < 1:
            raise StreamError(
                f"expire_after must be >= 1, got {expire_after}"
            )
        if synopsis not in _SYNOPSES:
            raise StreamError(
                f"unknown synopsis {synopsis!r}; expected {_SYNOPSES}"
            )
        self.key = key
        self.attribute = attribute
        self.window_size = window_size
        self.agg = agg
        self.output = output if output is not None else agg
        self.emit_every = emit_every
        self.resum_interval = resum_interval
        self.expire_after = expire_after
        self.synopsis = synopsis
        self._groups: dict[object, RollingWindowStats] = {}
        #: TTL bookkeeping: (expiry arrival index, key) per pushed
        #: member, plus per-key credits for members the per-group window
        #: already evicted ahead of their TTL (so they are not evicted
        #: twice).
        self._ttl: deque[tuple[int, object]] | None = (
            deque() if expire_after is not None else None
        )
        self._early: dict[object, int] = {}
        self._arrivals = 0

    def _sync_rolling_metrics(self) -> None:
        obs = self._obs
        if obs is None:
            for stats in self._groups.values():
                stats.set_metrics(None, None)
        else:
            for stats in self._groups.values():
                stats.set_metrics(obs.rolling_resums, obs.rolling_drift)

    def _group_stats(self, group_key: object) -> RollingWindowStats:
        stats = self._groups.get(group_key)
        if stats is None:
            if self.synopsis == "chunked":
                stats = ChunkedWindowStats(self.resum_interval)
            else:
                stats = RollingWindowStats(
                    self.resum_interval,
                    track_extrema=self.agg in ("min", "max"),
                )
            obs = self._obs
            if obs is not None:
                stats.set_metrics(obs.rolling_resums, obs.rolling_drift)
            self._groups[group_key] = stats
        return stats

    def _after_push(self, group_key: object, stats) -> None:
        """Window eviction + TTL bookkeeping for one pushed member."""
        if stats.count > self.window_size:
            stats.evict_oldest()
            if self._ttl is not None:
                self._early[group_key] = self._early.get(group_key, 0) + 1
        ttl = self._ttl
        if ttl is None:
            return
        self._arrivals += 1
        ttl.append((self._arrivals + self.expire_after, group_key))
        arrivals = self._arrivals
        early = self._early
        groups = self._groups
        while ttl and ttl[0][0] <= arrivals:
            _, expired_key = ttl.popleft()
            credit = early.get(expired_key)
            if credit:
                if credit == 1:
                    del early[expired_key]
                else:
                    early[expired_key] = credit - 1
                continue
            expired = groups.get(expired_key)
            if expired is None:
                continue
            expired.evict_oldest()
            if expired.count == 0:
                # Fully drained: reclaim the per-key state.  Remaining
                # TTL entries for this key (if any) are exactly covered
                # by its surviving early-eviction credits.
                del groups[expired_key]

    def _aggregate(self, group_key: object) -> UncertainTuple:
        value = _aggregate_value(self._groups[group_key], self.agg)
        return UncertainTuple({self.key: group_key, self.output: value})

    def process(self, tup: UncertainTuple) -> None:
        group_key = tup.value(self.key)
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        stats = self._group_stats(group_key)
        stats.push(dist.mean(), dist.variance(), field.sample_size)
        self._after_push(group_key, stats)
        if self.emit_every:
            self.emit(self._aggregate(group_key))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        if isinstance(tuples, ColumnarBatch):
            key_column = tuples.column(self.key)
            column = tuples.gaussian_column(self.attribute)
            if key_column is not None and column is not None:
                agg = self.agg
                emit_every = self.emit_every
                group_stats = self._group_stats
                after_push = self._after_push
                outputs = []
                for group_key, mu, sigma2, size in zip(
                    key_column.values(),
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                ):
                    stats = group_stats(group_key)
                    stats.push(
                        mu, sigma2, None if size == EXACT_SIZE else size
                    )
                    after_push(group_key, stats)
                    if emit_every:
                        outputs.append(_aggregate_value(stats, agg))
                if emit_every:
                    # The output tuple is {key, output} with default
                    # probability/timestamp, exactly as ``_aggregate``
                    # builds it — the key column is reused as-is.
                    self.emit_many(
                        ColumnarBatch(
                            len(tuples),
                            (self.key, self.output),
                            {
                                self.key: key_column,
                                self.output: _infer_column(outputs),
                            },
                        )
                    )
                return
        super().process_many(tuples)

    def on_flush(self) -> None:
        if not self.emit_every:
            for group_key in sorted(
                self._groups, key=lambda k: str(k)
            ):
                self.emit(self._aggregate(group_key))

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def state_bytes(self) -> int:
        """Retained per-key state, for the ``state.bytes`` gauge."""
        total = 96 * len(self._groups)  # dict slots + key objects
        for stats in self._groups.values():
            total += stats.nbytes
        if self._ttl is not None:
            total += 64 * len(self._ttl) + 96 * len(self._early)
        return total
