"""Pipeline assembly and execution.

A :class:`Pipeline` chains operators into a linear push pipeline, runs a
tuple source through it, and flushes buffered state at end-of-stream.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import StreamError
from repro.streams.operators import Operator
from repro.streams.tuples import UncertainTuple

__all__ = ["Pipeline"]


class Pipeline:
    """A linear chain of operators ending in a sink.

    The last operator is conventionally a sink (:class:`CollectSink` or
    :class:`CountingSink`), but any operator chain works — tuples emitted
    by the final operator simply vanish if it has no terminal behaviour.
    """

    def __init__(self, operators: Sequence[Operator]) -> None:
        if not operators:
            raise StreamError("pipeline needs at least one operator")
        self.operators = list(operators)
        for upstream, downstream in zip(self.operators, self.operators[1:]):
            upstream.connect(downstream)

    @property
    def head(self) -> Operator:
        return self.operators[0]

    @property
    def sink(self) -> Operator:
        return self.operators[-1]

    def push(self, tup: UncertainTuple) -> None:
        """Feed one tuple into the pipeline."""
        self.head.receive(tup)

    def run(self, source: Iterable[UncertainTuple]) -> Operator:
        """Push every tuple from the source, flush, and return the sink."""
        for tup in source:
            self.head.receive(tup)
        self.head.flush()
        return self.sink

    def push_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Feed a batch of tuples into the pipeline."""
        if tuples:
            self.head.receive_many(tuples)

    def run_batched(
        self,
        source: Iterable[UncertainTuple],
        batch_size: int = 256,
    ) -> Operator:
        """Like :meth:`run`, but push tuples in batches of ``batch_size``.

        Batch-aware operators (``receive_many``) amortize per-tuple
        dispatch and vectorize accuracy computation across the batch;
        every operator falls back to per-tuple processing otherwise, so
        the sink contents are identical to :meth:`run` for any pipeline.
        """
        if batch_size < 1:
            raise StreamError(f"batch size must be >= 1, got {batch_size}")
        head = self.head
        batch: list[UncertainTuple] = []
        append = batch.append
        for tup in source:
            append(tup)
            if len(batch) >= batch_size:
                head.receive_many(batch)
                batch = []
                append = batch.append
        if batch:
            head.receive_many(batch)
        head.flush()
        return self.sink
