"""Pipeline assembly and execution.

A :class:`Pipeline` chains operators into a linear push pipeline, runs a
tuple source through it, and flushes buffered state at end-of-stream.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import StreamError
from repro.streams.operators import Operator
from repro.streams.tuples import UncertainTuple

__all__ = ["Pipeline"]


class Pipeline:
    """A linear chain of operators ending in a sink.

    The last operator is conventionally a sink (:class:`CollectSink` or
    :class:`CountingSink`), but any operator chain works — tuples emitted
    by the final operator simply vanish if it has no terminal behaviour.
    """

    def __init__(self, operators: Sequence[Operator]) -> None:
        if not operators:
            raise StreamError("pipeline needs at least one operator")
        self.operators = list(operators)
        for upstream, downstream in zip(self.operators, self.operators[1:]):
            upstream.connect(downstream)

    @property
    def head(self) -> Operator:
        return self.operators[0]

    @property
    def sink(self) -> Operator:
        return self.operators[-1]

    def push(self, tup: UncertainTuple) -> None:
        """Feed one tuple into the pipeline."""
        self.head.receive(tup)

    def run(self, source: Iterable[UncertainTuple]) -> Operator:
        """Push every tuple from the source, flush, and return the sink."""
        for tup in source:
            self.head.receive(tup)
        self.head.flush()
        return self.sink
