"""Pipeline assembly and execution.

A :class:`Pipeline` chains operators into a linear push pipeline, runs a
tuple source through it, and flushes buffered state at end-of-stream.

Passing a :class:`~repro.obs.metrics.MetricsRegistry` (``registry=`` or
:meth:`Pipeline.attach_metrics`) turns on per-operator observability:
each operator records tuples in/out, wall time, batch sizes, and —
for accuracy-producing operators — emitted confidence-interval widths;
the pipeline itself records runs, tuples pushed, and end-to-end wall
time.  With no registry the execution paths are unchanged.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Iterable, Sequence
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StreamError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryRecorder
from repro.obs.trace import Span, Tracer
from repro.streams.columnar import ColumnarBatch, as_columnar
from repro.streams.operators import CollectSink, CountingSink, Operator
from repro.streams.tuples import UncertainTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.config import ParallelConfig
    from repro.parallel.pool import WorkerPool

__all__ = ["Pipeline"]


class Pipeline:
    """A linear chain of operators ending in a sink.

    The last operator is conventionally a sink (:class:`CollectSink` or
    :class:`CountingSink`), but any operator chain works — tuples emitted
    by the final operator simply vanish if it has no terminal behaviour.
    """

    def __init__(
        self,
        operators: Sequence[Operator],
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        telemetry: TelemetryRecorder | None = None,
    ) -> None:
        if not operators:
            raise StreamError("pipeline needs at least one operator")
        self.operators = list(operators)
        for upstream, downstream in zip(self.operators, self.operators[1:]):
            upstream.connect(downstream)
        self.registry: MetricsRegistry | None = None
        self._metrics_prefix = "pipeline"
        self.tracer: Tracer | None = None
        self._trace_prefix = "pipeline"
        self.telemetry: TelemetryRecorder | None = None
        if registry is not None:
            self.attach_metrics(registry)
        if tracer is not None:
            self.attach_trace(tracer)
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    def attach_metrics(
        self, registry: MetricsRegistry, prefix: str = "pipeline"
    ) -> MetricsRegistry:
        """Record this pipeline's execution into ``registry``.

        Operators get metric names ``{prefix}.{index:02d}.{ClassName}.*``
        so a registry shared across pipelines (or across configurations
        of the same experiment) keeps every stage distinguishable.
        """
        self.registry = registry
        self._metrics_prefix = prefix
        for index, op in enumerate(self.operators):
            name = f"{prefix}.{index:02d}.{type(op).__name__.lstrip('_')}"
            op.attach_metrics(registry, name)
        self._runs = registry.counter(
            f"{prefix}.runs", "completed run()/run_batched() calls"
        )
        self._tuples_pushed = registry.counter(
            f"{prefix}.tuples", "source tuples pushed into the pipeline"
        )
        self._run_seconds = registry.timer(
            f"{prefix}.run_seconds", "end-to-end wall time per run"
        )
        return registry

    def detach_metrics(self) -> None:
        """Stop recording metrics on this pipeline and its operators."""
        self.registry = None
        for op in self.operators:
            op.detach_metrics()
        for attribute in ("_runs", "_tuples_pushed", "_run_seconds"):
            if hasattr(self, attribute):
                delattr(self, attribute)

    def attach_trace(
        self, tracer: Tracer, prefix: str = "pipeline"
    ) -> Tracer:
        """Record this pipeline's spans into ``tracer``.

        Stage spans get the same ``{prefix}.{index:02d}.{ClassName}``
        names as metrics, so traces and metric tables line up.
        """
        self.tracer = tracer
        self._trace_prefix = prefix
        for index, op in enumerate(self.operators):
            name = f"{prefix}.{index:02d}.{type(op).__name__.lstrip('_')}"
            op.attach_trace(tracer, name, index)
        return tracer

    def detach_trace(self) -> None:
        """Stop recording spans on this pipeline and its operators."""
        self.tracer = None
        for op in self.operators:
            op.detach_trace()

    def attach_telemetry(
        self, recorder: TelemetryRecorder, prefix: str = "pipeline"
    ) -> TelemetryRecorder:
        """Cut frame-series telemetry from this pipeline's execution.

        Telemetry rides on metrics: if the recorder wraps a different
        registry than the one currently attached (or none is attached),
        the recorder's registry is attached under ``prefix`` — so an
        attached recorder always observes this pipeline's own metrics.
        The run loops then advance the recorder's stream position per
        pushed tuple/batch and finalize the trailing frame at
        end-of-run.  With no recorder attached the execution paths are
        untouched (telemetry is only ever consulted on the instrumented
        branch that an attached registry already selects).
        """
        self.telemetry = recorder
        if self.registry is not recorder.registry:
            self.attach_metrics(recorder.registry, prefix)
        return recorder

    def detach_telemetry(self) -> None:
        """Stop cutting frames (the metrics registry stays attached)."""
        self.telemetry = None

    def _begin_run(self, mode: str) -> Span:
        """Open the run span and every operator's stage span."""
        span = self.tracer.begin(
            f"{self._trace_prefix}.{mode}", kind="run"
        )
        for op in self.operators:
            handle = op._trace
            if handle is not None:
                handle.start_stage(span)
        return span

    def _end_run(self, span: Span, count: int) -> None:
        """Close every stage span (as inclusive-time summaries) + run."""
        for op in self.operators:
            handle = op._trace
            if handle is not None:
                handle.end_stage()
        self.tracer.end(span, tuples=count)

    @property
    def metrics_prefix(self) -> str:
        """Metric-name prefix from the last :meth:`attach_metrics` call."""
        return self._metrics_prefix

    @property
    def trace_prefix(self) -> str:
        """Span-name prefix from the last :meth:`attach_trace` call."""
        return self._trace_prefix

    def pristine(self) -> "Pipeline":
        """A deep, metrics-detached copy of this pipeline.

        Sharded execution clones the pipeline once per shard; the clone
        carries whatever operator state this pipeline currently holds
        (call :meth:`run_sharded` on a freshly built pipeline so shards
        start from empty windows), but never shares metrics objects or
        the registry with the original.
        """
        registry, prefix = self.registry, self._metrics_prefix
        tracer, trace_prefix = self.tracer, self._trace_prefix
        telemetry = self.telemetry
        if telemetry is not None:
            self.detach_telemetry()
        if registry is not None:
            self.detach_metrics()
        if tracer is not None:
            self.detach_trace()
        try:
            clone = copy.deepcopy(self)
        finally:
            if registry is not None:
                self.attach_metrics(registry, prefix)
            if tracer is not None:
                self.attach_trace(tracer, trace_prefix)
            if telemetry is not None:
                self.attach_telemetry(telemetry, prefix)
        clone._metrics_prefix = prefix
        clone._trace_prefix = trace_prefix
        return clone

    def reseed(self, seed: int | np.random.SeedSequence) -> None:
        """Re-seed every operator's internal randomness deterministically.

        Operator ``i`` receives spawn child ``i`` of the root
        :class:`~numpy.random.SeedSequence`; stateless operators ignore
        it (the default :meth:`Operator.reseed` is a no-op).
        """
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        for op, child in zip(self.operators, root.spawn(len(self.operators))):
            op.reseed(child)

    @property
    def head(self) -> Operator:
        return self.operators[0]

    @property
    def sink(self) -> Operator:
        return self.operators[-1]

    def push(self, tup: UncertainTuple) -> None:
        """Feed one tuple into the pipeline."""
        self.head.receive(tup)

    def run(self, source: Iterable[UncertainTuple]) -> Operator:
        """Push every tuple from the source, flush, and return the sink."""
        tracer = self.tracer
        if self.registry is None and tracer is None:
            for tup in source:
                self.head.receive(tup)
            self.head.flush()
            return self.sink
        run_span = self._begin_run("run") if tracer is not None else None
        head = self.head
        telemetry = self.telemetry
        count = 0
        start = perf_counter()
        if telemetry is None:
            for tup in source:
                head.receive(tup)
                count += 1
        else:
            for tup in source:
                head.receive(tup)
                count += 1
                telemetry.advance(1)
        head.flush()
        if self.registry is not None:
            self._run_seconds.record(perf_counter() - start)
            self._tuples_pushed.inc(count)
            self._runs.inc()
        if telemetry is not None:
            telemetry.finalize()
        if tracer is not None:
            self._end_run(run_span, count)
        return self.sink

    def push_many(self, tuples: Sequence[UncertainTuple]) -> None:
        """Feed a batch of tuples into the pipeline."""
        if tuples:
            self.head.receive_many(tuples)

    def run_batched(
        self,
        source: Iterable[UncertainTuple],
        batch_size: int = 256,
    ) -> Operator:
        """Like :meth:`run`, but push tuples in batches of ``batch_size``.

        Batch-aware operators (``process_many``) amortize per-tuple
        dispatch and vectorize accuracy computation across the batch;
        every operator falls back to per-tuple processing otherwise, so
        the sink contents are identical to :meth:`run` for any pipeline.

        Uniform-layout sequence sources are columnarized up front
        (:class:`~repro.streams.columnar.ColumnarBatch`) so batches are
        zero-copy column slices and batch-aware operators consume
        columns directly; non-uniform layouts and plain iterables keep
        the tuple-list batching.
        """
        if batch_size < 1:
            raise StreamError(f"batch size must be >= 1, got {batch_size}")
        registry = self.registry
        tracer = self.tracer
        run_span = (
            self._begin_run("run_batched") if tracer is not None else None
        )
        head = self.head
        telemetry = self.telemetry
        count = 0
        start = perf_counter() if registry is not None else 0.0
        if isinstance(source, Sequence):
            columnar = as_columnar(source)
            if columnar is not None:
                source = columnar
        if isinstance(source, ColumnarBatch):
            total = len(source)
            for a in range(0, total, batch_size):
                chunk = source.slice(a, min(a + batch_size, total))
                head.receive_many(chunk)
                count += len(chunk)
                if telemetry is not None:
                    telemetry.advance(len(chunk))
        else:
            batch: list[UncertainTuple] = []
            append = batch.append
            for tup in source:
                append(tup)
                if len(batch) >= batch_size:
                    head.receive_many(batch)
                    count += len(batch)
                    if telemetry is not None:
                        telemetry.advance(len(batch))
                    batch = []
                    append = batch.append
            if batch:
                head.receive_many(batch)
                count += len(batch)
                if telemetry is not None:
                    telemetry.advance(len(batch))
        head.flush()
        if registry is not None:
            self._run_seconds.record(perf_counter() - start)
            self._tuples_pushed.inc(count)
            self._runs.inc()
        if telemetry is not None:
            telemetry.finalize()
        if tracer is not None:
            self._end_run(run_span, count)
        return self.sink

    def run_sharded(
        self,
        source: Iterable[UncertainTuple],
        n_workers: int | None = None,
        partition_by: str | Callable[[UncertainTuple], object] | None = None,
        n_shards: int | None = None,
        batch_size: int = 256,
        seed: int | np.random.SeedSequence | None = None,
        merge: str = "auto",
        config: "ParallelConfig | None" = None,
        pool: "WorkerPool | None" = None,
    ) -> Operator:
        """Partition the source, run shards in worker processes, merge.

        The input is hash-partitioned into ``n_shards`` sub-streams
        (``partition_by`` names an attribute or is a key callable;
        ``None`` partitions round-robin), each shard runs through a
        pristine clone of this pipeline via :meth:`run_batched` in a
        worker process, and the per-shard sinks — plus per-worker
        metrics snapshots, when a registry is attached — are merged
        back into *this* pipeline's sink and registry deterministically.

        ``n_shards`` defaults to the resolved worker count; pin it
        explicitly to make results invariant while the worker count
        varies.  With ``n_workers <= 1`` (or when the pool cannot
        start) the identical shard decomposition runs in-process, so a
        fixed ``seed`` produces identical sink contents at any worker
        count.  See ``docs/PARALLELISM.md`` for the full contract and
        the sink merge semantics (``merge`` in ``{"auto",
        "interleave", "concat"}``).

        Only :class:`CollectSink` / :class:`CountingSink` terminals can
        be merged; other sinks raise :class:`StreamError`.
        """
        from repro.parallel.sharded import run_sharded as _run_sharded

        sink = self.sink
        if not isinstance(sink, (CollectSink, CountingSink)):
            raise StreamError(
                f"run_sharded needs a CollectSink or CountingSink "
                f"terminal operator; got {type(sink).__name__}"
            )
        result = _run_sharded(
            self,
            source,
            n_workers=n_workers,
            partition_by=partition_by,
            n_shards=n_shards,
            batch_size=batch_size,
            seed=seed,
            merge=merge,
            config=config,
            pool=pool,
        )
        if isinstance(sink, CountingSink):
            sink.count += result.merged_count()
        else:
            # process_many stores the merged chunk as received, keeping
            # a columnar merge columnar in the parent sink.
            sink.process_many(result.merged_results())
        if self.registry is not None:
            result.merge_metrics(self.registry)
        if self.telemetry is not None:
            # After merge_metrics: merge_telemetry re-baselines the
            # recorder against the post-merge cumulative registry.
            result.merge_telemetry(self.telemetry)
        if self.tracer is not None:
            result.merge_trace(self.tracer)
        return sink
