"""Uncertain stream engine substrate.

A push-based, tuple-at-a-time stream processor over uncertain tuples:
tuples carry a membership probability (tuple uncertainty) and
distribution-valued attributes (attribute uncertainty), per §II-A.
"""

from repro.streams.tuples import AttributeSpec, Schema, UncertainTuple
from repro.streams.columnar import ColumnarBatch, as_columnar
from repro.streams.stream import iter_source, replay_source
from repro.streams.windows import CountWindow, TimeWindow, TumblingWindow
from repro.streams.rolling import (
    DEFAULT_RESUM_INTERVAL,
    CompensatedSum,
    MinSizeTracker,
    RollingWindowStats,
    SlidingExtremum,
)
from repro.streams.operators import (
    Operator,
    Select,
    Project,
    Derive,
    ProbabilisticFilter,
    SignificanceFilter,
    SlidingGaussianAverage,
    WindowAggregate,
    TimeWindowAggregate,
    RollingLearnOperator,
    CollectSink,
    CountingSink,
)
from repro.streams.join import TagSide, WindowJoin
from repro.streams.groupby import GroupedAggregate
from repro.streams.engine import Pipeline
from repro.streams.throughput import ThroughputMeter, measure_throughput

__all__ = [
    "AttributeSpec",
    "Schema",
    "UncertainTuple",
    "ColumnarBatch",
    "as_columnar",
    "iter_source",
    "replay_source",
    "CountWindow",
    "TimeWindow",
    "TumblingWindow",
    "DEFAULT_RESUM_INTERVAL",
    "CompensatedSum",
    "MinSizeTracker",
    "RollingWindowStats",
    "SlidingExtremum",
    "Operator",
    "Select",
    "Project",
    "Derive",
    "ProbabilisticFilter",
    "SignificanceFilter",
    "SlidingGaussianAverage",
    "WindowAggregate",
    "TimeWindowAggregate",
    "RollingLearnOperator",
    "CollectSink",
    "CountingSink",
    "TagSide",
    "WindowJoin",
    "GroupedAggregate",
    "Pipeline",
    "ThroughputMeter",
    "measure_throughput",
]
