"""Struct-of-arrays tuple batches: the columnar currency of the batch path.

The vectorized kernels (PR 1) made the *math* array-shaped, but the
operator pipeline still moved one Python :class:`UncertainTuple` object
per stream element — and the sharded path pickled every one of them over
IPC, which is exactly the per-event-object overhead Diao et al. warn
against at high volume.  A :class:`ColumnarBatch` stores one batch of
tuples as NumPy columns instead:

* ``float`` / ``int`` attributes become ``float64`` / ``int64`` columns;
* ``DfSized(GaussianDistribution, n)`` attributes — the accuracy-carrying
  workhorse of the paper's pipelines — become three parallel columns
  ``(mu, sigma2, n)`` with ``-1`` marking an exact (``None``) sample
  size;
* equal-length 1-D ``float64`` arrays (raw per-item data points) become
  one ``(batch, k)`` matrix;
* anything else falls back to a narrow *object column* (a plain list)
  for truly opaque payloads.

Membership probabilities and timestamps get their own columns.  The
batch implements the ``Sequence[UncertainTuple]`` protocol, so any
operator that only knows about tuples keeps working — ``batch[i]``
materializes one tuple on demand — while batch-aware operators read and
write columns directly and never materialize at all.

Boundary adapters are exact: ``from_tuples(to_tuples(batch)) == batch``,
and materialized tuples are *byte-identical* (per-element
``pickle.dumps``) to the tuples the per-tuple path would have produced,
which is what lets the sharded determinism contract survive the
columnar refactor.  Exactness is why inference is deliberately strict:
a value only lands in a typed column when its round trip is the
identity (``type(x) is float``, not ``isinstance`` — a ``np.float64``
would come back as a different pickle).

Transport (:meth:`ColumnarBatch.to_payload` /
:meth:`ColumnarBatch.from_payload`) flattens a batch into its numeric
blocks so the sharded executor can ship them through the
:mod:`repro.parallel.shm` shared-memory transport as
:class:`~repro.parallel.shm.SharedSpec` handles instead of pickled
tuple lists.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.errors import StreamError
from repro.streams.tuples import UncertainTuple

__all__ = [
    "ColumnarBatch",
    "ColumnarPayload",
    "FloatColumn",
    "IntColumn",
    "GaussianDfColumn",
    "ArrayColumn",
    "ObjectColumn",
    "EXACT_SIZE",
    "as_columnar",
]

#: Numeric blocks smaller than this are pickled directly; shared-memory
#: segments only pay off once the copy they avoid is non-trivial.
SHM_MIN_BYTES = 4096

#: Sentinel in a :class:`GaussianDfColumn` size column for a ``None``
#: (exact / effectively infinite) sample size.
EXACT_SIZE = -1


def _as_f8(values: Sequence[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


class FloatColumn:
    """A column of Python ``float`` values, stored as one f8 array."""

    kind = "f8"
    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def get(self, i: int) -> float:
        return float(self.data[i])

    def values(self) -> list:
        """Materialized Python values, one per row."""
        return self.data.tolist()

    def take(self, indices: np.ndarray) -> "FloatColumn":
        return FloatColumn(self.data[indices])

    def slice(self, a: int, b: int) -> "FloatColumn":
        return FloatColumn(self.data[a:b])

    def export(self) -> tuple[object, list[np.ndarray], object]:
        return None, [self.data], None

    @staticmethod
    def restore(meta: object, arrays: list[np.ndarray], objects: object):
        return FloatColumn(arrays[0])

    @staticmethod
    def concat(parts: "list[FloatColumn]") -> "FloatColumn":
        return FloatColumn(np.concatenate([p.data for p in parts]))

    @staticmethod
    def allocate(total: int, template: "FloatColumn") -> "FloatColumn":
        return FloatColumn(np.empty(total, dtype=np.float64))

    def scatter(self, target: "FloatColumn", indices: np.ndarray) -> None:
        target.data[indices] = self.data

    def equal(self, other: "FloatColumn") -> bool:
        # Bitwise, so NaN == NaN and the round-trip property is exact.
        return (
            self.data.shape == other.data.shape
            and self.data.tobytes() == other.data.tobytes()
        )


class IntColumn:
    """A column of Python ``int`` values (int64 range), as one i8 array."""

    kind = "i8"
    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def get(self, i: int) -> int:
        return int(self.data[i])

    def values(self) -> list:
        return self.data.tolist()

    def take(self, indices: np.ndarray) -> "IntColumn":
        return IntColumn(self.data[indices])

    def slice(self, a: int, b: int) -> "IntColumn":
        return IntColumn(self.data[a:b])

    def export(self) -> tuple[object, list[np.ndarray], object]:
        return None, [self.data], None

    @staticmethod
    def restore(meta: object, arrays: list[np.ndarray], objects: object):
        return IntColumn(arrays[0])

    @staticmethod
    def concat(parts: "list[IntColumn]") -> "IntColumn":
        return IntColumn(np.concatenate([p.data for p in parts]))

    @staticmethod
    def allocate(total: int, template: "IntColumn") -> "IntColumn":
        return IntColumn(np.empty(total, dtype=np.int64))

    def scatter(self, target: "IntColumn", indices: np.ndarray) -> None:
        target.data[indices] = self.data

    def equal(self, other: "IntColumn") -> bool:
        return (
            self.data.shape == other.data.shape
            and self.data.tobytes() == other.data.tobytes()
        )


class GaussianDfColumn:
    """``DfSized(GaussianDistribution(mu, sigma2), n)`` as three columns.

    This is the accuracy-carrying value of the paper's pipelines —
    learned Gaussians plus their Lemma-3 sample size — so it gets a
    first-class decomposition instead of the object-column fallback.
    ``sizes`` uses ``-1`` for an exact (``None``) sample size.
    """

    kind = "gaussian-df"
    __slots__ = ("mu", "sigma2", "sizes")

    def __init__(
        self, mu: np.ndarray, sigma2: np.ndarray, sizes: np.ndarray
    ) -> None:
        self.mu = mu
        self.sigma2 = sigma2
        self.sizes = sizes

    def __len__(self) -> int:
        return len(self.mu)

    def get(self, i: int) -> DfSized:
        size = int(self.sizes[i])
        return DfSized(
            GaussianDistribution(float(self.mu[i]), float(self.sigma2[i])),
            None if size == EXACT_SIZE else size,
        )

    def values(self) -> list:
        return [self.get(i) for i in range(len(self.mu))]

    def take(self, indices: np.ndarray) -> "GaussianDfColumn":
        return GaussianDfColumn(
            self.mu[indices], self.sigma2[indices], self.sizes[indices]
        )

    def slice(self, a: int, b: int) -> "GaussianDfColumn":
        return GaussianDfColumn(
            self.mu[a:b], self.sigma2[a:b], self.sizes[a:b]
        )

    def export(self) -> tuple[object, list[np.ndarray], object]:
        return None, [self.mu, self.sigma2, self.sizes], None

    @staticmethod
    def restore(meta: object, arrays: list[np.ndarray], objects: object):
        return GaussianDfColumn(arrays[0], arrays[1], arrays[2])

    @staticmethod
    def concat(parts: "list[GaussianDfColumn]") -> "GaussianDfColumn":
        return GaussianDfColumn(
            np.concatenate([p.mu for p in parts]),
            np.concatenate([p.sigma2 for p in parts]),
            np.concatenate([p.sizes for p in parts]),
        )

    @staticmethod
    def allocate(
        total: int, template: "GaussianDfColumn"
    ) -> "GaussianDfColumn":
        return GaussianDfColumn(
            np.empty(total, dtype=np.float64),
            np.empty(total, dtype=np.float64),
            np.empty(total, dtype=np.int64),
        )

    def scatter(
        self, target: "GaussianDfColumn", indices: np.ndarray
    ) -> None:
        target.mu[indices] = self.mu
        target.sigma2[indices] = self.sigma2
        target.sizes[indices] = self.sizes

    def equal(self, other: "GaussianDfColumn") -> bool:
        return (
            self.mu.shape == other.mu.shape
            and self.mu.tobytes() == other.mu.tobytes()
            and self.sigma2.tobytes() == other.sigma2.tobytes()
            and self.sizes.tobytes() == other.sizes.tobytes()
        )


class ArrayColumn:
    """Equal-length 1-D float64 payloads as one ``(batch, k)`` matrix.

    The Fig 5 workload's 20 raw data points per item travel here: one
    contiguous block instead of ``batch`` small array objects.
    """

    kind = "f8-matrix"
    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    def __len__(self) -> int:
        return len(self.matrix)

    def get(self, i: int) -> np.ndarray:
        return self.matrix[i]

    def values(self) -> list:
        return list(self.matrix)

    def take(self, indices: np.ndarray) -> "ArrayColumn":
        return ArrayColumn(self.matrix[indices])

    def slice(self, a: int, b: int) -> "ArrayColumn":
        return ArrayColumn(self.matrix[a:b])

    def export(self) -> tuple[object, list[np.ndarray], object]:
        return None, [self.matrix], None

    @staticmethod
    def restore(meta: object, arrays: list[np.ndarray], objects: object):
        return ArrayColumn(arrays[0])

    @staticmethod
    def concat(parts: "list[ArrayColumn]") -> "ArrayColumn":
        widths = {p.matrix.shape[1] for p in parts}
        if len(widths) != 1:
            raise StreamError(
                f"cannot concatenate array columns of widths {sorted(widths)}"
            )
        return ArrayColumn(np.concatenate([p.matrix for p in parts]))

    @staticmethod
    def allocate(total: int, template: "ArrayColumn") -> "ArrayColumn":
        return ArrayColumn(
            np.empty((total, template.matrix.shape[1]), dtype=np.float64)
        )

    def scatter(self, target: "ArrayColumn", indices: np.ndarray) -> None:
        target.matrix[indices] = self.matrix

    def equal(self, other: "ArrayColumn") -> bool:
        return (
            self.matrix.shape == other.matrix.shape
            and self.matrix.tobytes() == other.matrix.tobytes()
        )


class ObjectColumn:
    """Fallback column for truly opaque payloads (a plain list).

    Whatever does not decompose into numeric columns — strings, mixed
    types, non-Gaussian distributions, :class:`~repro.core.accuracy.
    AccuracyInfo` results — rides here and is pickled as-is at the IPC
    boundary.  Keeping this column *narrow* (few attributes, small
    values) is what keeps the transport fast.
    """

    kind = "object"
    __slots__ = ("data",)

    def __init__(self, data: list) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def get(self, i: int) -> object:
        return self.data[i]

    def values(self) -> list:
        return self.data

    def take(self, indices: np.ndarray) -> "ObjectColumn":
        data = self.data
        return ObjectColumn([data[i] for i in indices])

    def slice(self, a: int, b: int) -> "ObjectColumn":
        return ObjectColumn(self.data[a:b])

    def export(self) -> tuple[object, list[np.ndarray], object]:
        return None, [], self.data

    @staticmethod
    def restore(meta: object, arrays: list[np.ndarray], objects: object):
        return ObjectColumn(objects)

    @staticmethod
    def concat(parts: "list[ObjectColumn]") -> "ObjectColumn":
        data: list = []
        for p in parts:
            data.extend(p.data)
        return ObjectColumn(data)

    @staticmethod
    def allocate(total: int, template: "ObjectColumn") -> "ObjectColumn":
        return ObjectColumn([None] * total)

    def scatter(self, target: "ObjectColumn", indices: np.ndarray) -> None:
        data = target.data
        for value, i in zip(self.data, indices):
            data[i] = value

    def equal(self, other: "ObjectColumn") -> bool:
        if len(self.data) != len(other.data):
            return False
        return all(
            a is b or _values_equal(a, b)
            for a, b in zip(self.data, other.data)
        )


_COLUMN_TYPES = {
    cls.kind: cls
    for cls in (FloatColumn, IntColumn, GaussianDfColumn, ArrayColumn,
                ObjectColumn)
}

Column = (
    FloatColumn | IntColumn | GaussianDfColumn | ArrayColumn | ObjectColumn
)


def _values_equal(a: object, b: object) -> bool:
    """Equality that treats NaN as equal to itself (for object columns)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return (
            a.shape == b.shape
            and a.dtype == b.dtype
            and a.tobytes() == b.tobytes()
        )
    try:
        return bool(a == b)
    except Exception:  # noqa: BLE001 - arbitrary payload comparison
        return False


def _infer_column(values: list) -> Column:
    """Pick the narrowest exact representation for one attribute.

    Strictness is deliberate: a value joins a typed column only when its
    round trip is the *identity* under ``pickle`` — ``type(x) is float``
    rather than ``isinstance`` — so materialized tuples stay
    byte-identical to what the per-tuple path would carry.
    """
    if all(type(v) is float for v in values):
        return FloatColumn(_as_f8(values))
    if all(type(v) is int for v in values):
        try:
            return IntColumn(np.array(values, dtype=np.int64))
        except OverflowError:
            return ObjectColumn(values)
    if all(
        type(v) is DfSized
        and type(v.distribution) is GaussianDistribution
        and (v.sample_size is None or type(v.sample_size) is int)
        for v in values
    ):
        try:
            sizes = np.array(
                [
                    EXACT_SIZE if v.sample_size is None else v.sample_size
                    for v in values
                ],
                dtype=np.int64,
            )
        except OverflowError:
            return ObjectColumn(values)
        return GaussianDfColumn(
            _as_f8([v.distribution.mu for v in values]),
            _as_f8([v.distribution.sigma2 for v in values]),
            sizes,
        )
    if all(
        type(v) is np.ndarray and v.ndim == 1 and v.dtype == np.float64
        for v in values
    ):
        widths = {len(v) for v in values}
        if len(widths) == 1:
            return ArrayColumn(np.array(values, dtype=np.float64))
    return ObjectColumn(values)


def _scalar_column(values: list) -> "np.ndarray | list":
    """Probability/timestamp storage: f8 array when exactly representable."""
    if all(type(v) is float for v in values):
        return _as_f8(values)
    return values


class ColumnarPayload:
    """Flattened, picklable form of a batch for the IPC boundary.

    Numeric blocks are either ndarrays (pickled — one buffer copy each)
    or :class:`~repro.parallel.shm.SharedSpec` handles into shared
    memory; object columns and non-float probability/timestamp lists
    ride as pickled Python objects.  Build with
    :meth:`ColumnarBatch.to_payload`, rebuild with
    :meth:`ColumnarBatch.from_payload`.
    """

    __slots__ = (
        "length", "names", "kinds", "metas", "counts", "blocks",
        "objects", "prob", "ts",
    )

    def __init__(
        self,
        length: int,
        names: tuple[str, ...],
        kinds: tuple[str, ...],
        metas: tuple[object, ...],
        counts: tuple[int, ...],
        blocks: list,
        objects: dict[str, object],
        prob: object,
        ts: object,
    ) -> None:
        self.length = length
        self.names = names
        self.kinds = kinds
        self.metas = metas
        self.counts = counts
        self.blocks = blocks
        self.objects = objects
        self.prob = prob
        self.ts = ts


class ColumnarBatch(Sequence):
    """One batch of uncertain tuples in struct-of-arrays layout.

    Construct with :meth:`from_tuples` (strict exact inference) or
    directly from columns (batch-aware operators building outputs).
    Behaves as an immutable ``Sequence[UncertainTuple]``; treat the
    underlying arrays as frozen — slices and ``take`` share buffers.
    """

    __slots__ = ("_length", "_names", "_columns", "_prob", "_ts")

    def __init__(
        self,
        length: int,
        names: tuple[str, ...],
        columns: dict[str, Column],
        probabilities: "np.ndarray | list | None" = None,
        timestamps: "np.ndarray | list | None" = None,
    ) -> None:
        self._length = length
        self._names = tuple(names)
        self._columns = columns
        if probabilities is None:
            probabilities = np.ones(length, dtype=np.float64)
        self._prob = probabilities
        self._ts = timestamps
        for name in self._names:
            if len(columns[name]) != length:
                raise StreamError(
                    f"column {name!r} has {len(columns[name])} rows, "
                    f"batch has {length}"
                )

    # -- boundary adapters ---------------------------------------------------

    @classmethod
    def from_tuples(
        cls, tuples: "Sequence[UncertainTuple]"
    ) -> "ColumnarBatch":
        """Columnarize a uniform tuple batch (exact round trip).

        Every tuple must carry the same attribute names in the same
        order — the layout of a stream, not of an arbitrary bag of
        tuples.  Raises :class:`StreamError` otherwise; use
        :func:`as_columnar` for a fallible conversion.
        """
        if isinstance(tuples, ColumnarBatch):
            return tuples
        tuples = list(tuples)
        if not tuples:
            return cls.empty()
        names = tuple(tuples[0].attributes.keys())
        for tup in tuples:
            if tuple(tup.attributes.keys()) != names:
                raise StreamError(
                    "columnar batches need a uniform attribute layout; got "
                    f"{tuple(tup.attributes.keys())} after {names}"
                )
        columns = {
            name: _infer_column([tup.attributes[name] for tup in tuples])
            for name in names
        }
        probabilities = _scalar_column([tup.probability for tup in tuples])
        ts_values = [tup.timestamp for tup in tuples]
        timestamps: np.ndarray | list | None
        if all(v is None for v in ts_values):
            timestamps = None
        else:
            timestamps = _scalar_column(ts_values)
        return cls(len(tuples), names, columns, probabilities, timestamps)

    @classmethod
    def empty(cls) -> "ColumnarBatch":
        return cls(0, (), {}, np.empty(0, dtype=np.float64), None)

    def to_tuples(self) -> list[UncertainTuple]:
        """Materialize every row as an :class:`UncertainTuple`."""
        return list(self)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def probability(self, i: int) -> float:
        value = self._prob[i]
        return float(value) if type(value) is np.float64 else value

    def timestamp(self, i: int) -> "float | None":
        if self._ts is None:
            return None
        value = self._ts[i]
        return float(value) if type(value) is np.float64 else value

    def __getitem__(self, index):
        if isinstance(index, slice):
            a, b, step = index.indices(self._length)
            if step != 1:
                raise StreamError("columnar batches support step-1 slices")
            return self.slice(a, b)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(index)
        attributes = {
            name: self._columns[name].get(index) for name in self._names
        }
        return UncertainTuple(
            attributes, self.probability(index), self.timestamp(index)
        )

    def __iter__(self) -> Iterator[UncertainTuple]:
        getters = [
            (name, self._columns[name].get) for name in self._names
        ]
        for i in range(self._length):
            yield UncertainTuple(
                {name: get(i) for name, get in getters},
                self.probability(i),
                self.timestamp(i),
            )

    # -- column access for batch-aware operators -----------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def probabilities(self) -> "np.ndarray | list":
        return self._prob

    @property
    def timestamps(self) -> "np.ndarray | list | None":
        return self._ts

    def column(self, name: str) -> "Column | None":
        """The named column, or ``None`` when the batch lacks it."""
        return self._columns.get(name)

    def gaussian_column(self, name: str) -> "GaussianDfColumn | None":
        """The named column if it is Gaussian-with-sample-size, else None.

        The common gate of the columnar operator fast paths: accuracy
        kernels consume ``(mu, sigma2, n)`` directly when this hits.
        """
        column = self._columns.get(name)
        return column if isinstance(column, GaussianDfColumn) else None

    def with_column(self, name: str, column: Column) -> "ColumnarBatch":
        """A new batch with ``column`` appended (or replaced) as ``name``.

        Mirrors ``UncertainTuple.with_attributes`` for whole batches:
        untouched columns are shared, not copied.
        """
        if len(column) != self._length:
            raise StreamError(
                f"column {name!r} has {len(column)} rows, "
                f"batch has {self._length}"
            )
        columns = dict(self._columns)
        columns[name] = column
        names = (
            self._names if name in self._columns else self._names + (name,)
        )
        return ColumnarBatch(
            self._length, names, columns, self._prob, self._ts
        )

    def project(self, names: Sequence[str]) -> "ColumnarBatch":
        """Keep only the named columns (shared, not copied)."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise StreamError(f"batch has no columns {missing}")
        return ColumnarBatch(
            self._length,
            tuple(names),
            {n: self._columns[n] for n in names},
            self._prob,
            self._ts,
        )

    # -- reshaping -----------------------------------------------------------

    def slice(self, a: int, b: int) -> "ColumnarBatch":
        """Zero-copy contiguous sub-batch (the run_batched fast path)."""
        columns = {
            name: col.slice(a, b) for name, col in self._columns.items()
        }
        prob = self._prob[a:b]
        ts = self._ts[a:b] if self._ts is not None else None
        return ColumnarBatch(b - a, self._names, columns, prob, ts)

    def take(self, indices: Sequence[int]) -> "ColumnarBatch":
        """Row subset in the given order (shard partitioning)."""
        idx = np.asarray(indices, dtype=np.intp)
        columns = {
            name: col.take(idx) for name, col in self._columns.items()
        }
        if isinstance(self._prob, np.ndarray):
            prob = self._prob[idx]
        else:
            prob = [self._prob[i] for i in indices]
        ts: np.ndarray | list | None
        if self._ts is None:
            ts = None
        elif isinstance(self._ts, np.ndarray):
            ts = self._ts[idx]
        else:
            ts = [self._ts[i] for i in indices]
        return ColumnarBatch(len(idx), self._names, columns, prob, ts)

    def schema_signature(self) -> tuple:
        """Names + column kinds; two batches merge iff these match."""
        return (
            self._names,
            tuple(type(self._columns[n]).kind for n in self._names),
            isinstance(self._prob, np.ndarray),
            None if self._ts is None else isinstance(self._ts, np.ndarray),
        )

    @classmethod
    def concat(cls, batches: "Sequence[ColumnarBatch]") -> "ColumnarBatch":
        """Shard-order concatenation (the ``merge='concat'`` reassembly)."""
        parts = [b for b in batches if len(b)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        signature = parts[0].schema_signature()
        if any(p.schema_signature() != signature for p in parts[1:]):
            raise StreamError(
                "cannot concatenate columnar batches with different schemas"
            )
        first = parts[0]
        columns = {
            name: type(first._columns[name]).concat(
                [p._columns[name] for p in parts]
            )
            for name in first._names
        }
        if isinstance(first._prob, np.ndarray):
            prob: np.ndarray | list = np.concatenate(
                [p._prob for p in parts]
            )
        else:
            prob = [x for p in parts for x in p._prob]
        ts: np.ndarray | list | None
        if first._ts is None:
            ts = None
        elif isinstance(first._ts, np.ndarray):
            ts = np.concatenate([p._ts for p in parts])
        else:
            ts = [x for p in parts for x in p._ts]
        return cls(
            sum(len(p) for p in parts), first._names, columns, prob, ts
        )

    @classmethod
    def interleave(
        cls,
        batches: "Sequence[ColumnarBatch]",
        positions: Sequence[Sequence[int]],
        total: int,
    ) -> "ColumnarBatch":
        """Scatter shard outputs back to their global input positions.

        The columnar form of the ``merge='interleave'`` reassembly: each
        shard's rows land at the input indices they were computed from,
        reproducing the serial order exactly.  Requires one output per
        input position (callers verify before choosing this mode).
        """
        parts = [
            (batch, np.asarray(pos, dtype=np.intp))
            for batch, pos in zip(batches, positions)
            if len(batch)
        ]
        if not parts:
            return cls.empty()
        signature = parts[0][0].schema_signature()
        if any(p.schema_signature() != signature for p, _ in parts[1:]):
            raise StreamError(
                "cannot interleave columnar batches with different schemas"
            )
        first = parts[0][0]
        columns: dict[str, Column] = {}
        for name in first._names:
            kind = type(first._columns[name])
            target = kind.allocate(total, first._columns[name])
            for batch, pos in parts:
                batch._columns[name].scatter(target, pos)
            columns[name] = target
        if isinstance(first._prob, np.ndarray):
            prob: np.ndarray | list = np.empty(total, dtype=np.float64)
            for batch, pos in parts:
                prob[pos] = batch._prob
        else:
            prob = [None] * total
            for batch, pos in parts:
                for value, i in zip(batch._prob, pos):
                    prob[i] = value
        ts: np.ndarray | list | None
        if first._ts is None:
            ts = None
        elif isinstance(first._ts, np.ndarray):
            ts = np.empty(total, dtype=np.float64)
            for batch, pos in parts:
                ts[pos] = batch._ts
        else:
            ts = [None] * total
            for batch, pos in parts:
                for value, i in zip(batch._ts, pos):
                    ts[i] = value
        return cls(total, first._names, columns, prob, ts)

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarBatch):
            return NotImplemented
        if self._length != other._length or self._names != other._names:
            return False
        if self.schema_signature() != other.schema_signature():
            return False
        for name in self._names:
            if not self._columns[name].equal(other._columns[name]):
                return False
        if isinstance(self._prob, np.ndarray):
            if self._prob.tobytes() != other._prob.tobytes():
                return False
        elif not all(
            _values_equal(a, b) for a, b in zip(self._prob, other._prob)
        ):
            return False
        if self._ts is None:
            return other._ts is None
        if isinstance(self._ts, np.ndarray):
            return self._ts.tobytes() == other._ts.tobytes()
        return all(
            _values_equal(a, b) for a, b in zip(self._ts, other._ts)
        )

    __hash__ = None  # type: ignore[assignment] - mutable buffers

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{n}:{type(self._columns[n]).kind}" for n in self._names
        )
        return f"ColumnarBatch({self._length} rows; {kinds})"

    # -- IPC transport -------------------------------------------------------

    def to_payload(
        self, use_shm: bool = True
    ) -> "tuple[ColumnarPayload, list]":
        """Flatten for the IPC boundary.

        Numeric blocks of at least :data:`SHM_MIN_BYTES` are published
        as shared-memory segments (:class:`SharedSpec` handles) when
        ``use_shm``; smaller blocks and object columns pickle directly.
        Returns ``(payload, owners)`` — the caller must ``release()``
        every owner after the consuming tasks have finished (the parent
        owns segment lifetimes; see :mod:`repro.parallel.shm`).
        """
        from repro.parallel.shm import share_array

        owners: list = []
        blocks: list = []
        kinds: list[str] = []
        metas: list[object] = []
        counts: list[int] = []
        objects: dict[str, object] = {}

        def ship(array: np.ndarray) -> object:
            if use_shm and array.nbytes >= SHM_MIN_BYTES:
                shared = share_array(array)
                if shared is not None:
                    owners.append(shared)
                    return shared.spec
            return array

        for name in self._names:
            column = self._columns[name]
            meta, arrays, obj = column.export()
            kinds.append(type(column).kind)
            metas.append(meta)
            counts.append(len(arrays))
            blocks.extend(ship(a) for a in arrays)
            if obj is not None:
                objects[name] = obj
        prob = (
            ship(self._prob)
            if isinstance(self._prob, np.ndarray)
            else self._prob
        )
        ts = (
            ship(self._ts) if isinstance(self._ts, np.ndarray) else self._ts
        )
        payload = ColumnarPayload(
            self._length,
            self._names,
            tuple(kinds),
            tuple(metas),
            tuple(counts),
            blocks,
            objects,
            prob,
            ts,
        )
        return payload, owners

    @classmethod
    def from_payload(cls, payload: ColumnarPayload) -> "ColumnarBatch":
        """Rebuild a batch on the worker side of the IPC boundary.

        Shared-memory blocks are copied out (one ``memcpy`` per column)
        and the segments closed immediately, so the parent can unlink
        them as soon as every task has completed.
        """
        from repro.parallel.shm import SharedSpec, attach_array

        def load(block: object) -> np.ndarray:
            if isinstance(block, SharedSpec):
                view, segment = attach_array(block)
                array = np.array(view, copy=True)
                del view
                segment.close()
                return array
            return block  # a plain (pickled) ndarray

        blocks = iter(payload.blocks)
        columns: dict[str, Column] = {}
        for name, kind, meta, count in zip(
            payload.names, payload.kinds, payload.metas, payload.counts
        ):
            arrays = [load(next(blocks)) for _ in range(count)]
            columns[name] = _COLUMN_TYPES[kind].restore(
                meta, arrays, payload.objects.get(name)
            )
        prob = (
            load(payload.prob)
            if isinstance(payload.prob, (SharedSpec, np.ndarray))
            else payload.prob
        )
        ts = (
            load(payload.ts)
            if isinstance(payload.ts, (SharedSpec, np.ndarray))
            else payload.ts
        )
        return cls(payload.length, payload.names, columns, prob, ts)


def as_columnar(
    source: "Sequence[UncertainTuple]",
) -> "ColumnarBatch | None":
    """Columnarize when possible; ``None`` for non-uniform tuple layouts.

    The fallible twin of :meth:`ColumnarBatch.from_tuples` for callers
    with a tuple-list fallback (the sharded executor).
    """
    if isinstance(source, ColumnarBatch):
        return source
    try:
        return ColumnarBatch.from_tuples(source)
    except StreamError:
        return None
