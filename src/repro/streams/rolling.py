"""Rolling-statistics kernels for O(1)-per-slide window maintenance.

Sliding-window operators used to rebuild full ``means``/``variances``
lists and re-scan ``min(sizes)`` on every slide — O(window) per tuple.
This module provides the incremental kernels they now share:

* :class:`CompensatedSum` — a Kahan–Neumaier compensated accumulator
  with subtract-on-evict, so running sums stay accurate under the
  add/remove churn of a sliding window.
* :class:`SlidingExtremum` — a monotonic-deque sliding min/max for FIFO
  windows (amortized O(1) per slide, O(1) queries).
* :class:`MinSizeTracker` — a counter-based multiset minimum over the
  window members' sample sizes, i.e. the de facto sample size of the
  window aggregate (Definition 2 / Lemma 3) without the per-slide
  ``min(sizes)`` scan.
* :class:`RollingWindowStats` — the bundle the windowed operators hold:
  count, compensated mean/variance sums, optional extrema of the means,
  and the Lemma-3 minimum sample size, under FIFO append/evict (count-
  or time-based eviction).

Compensated subtraction is very accurate but not exact, so every
``resum_interval`` evictions (default :data:`DEFAULT_RESUM_INTERVAL`)
the sums are recomputed exactly from the buffered members with
:func:`math.fsum` — the *drift guard*.  Immediately after a re-sum the
running sums equal the exactly rounded from-scratch reference; between
re-sums they stay within ~1e-12 relative error (tests enforce 1e-9).
The observed drift magnitude and re-sum count feed the observability
layer when metrics are attached (see ``docs/ROLLING.md``).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterator

from repro.errors import StreamError

__all__ = [
    "DEFAULT_RESUM_INTERVAL",
    "CompensatedSum",
    "SlidingExtremum",
    "MinSizeTracker",
    "RollingWindowStats",
]

#: Evictions between exact re-sums of the compensated running sums.
DEFAULT_RESUM_INTERVAL = 4096


def check_resum_interval(resum_interval: int) -> int:
    """Validate a drift-guard period (shared by operators and learners)."""
    if resum_interval < 1:
        raise StreamError(
            f"resum interval must be >= 1, got {resum_interval}"
        )
    return int(resum_interval)


class CompensatedSum:
    """Kahan–Neumaier compensated running sum with subtract-on-evict.

    ``add``/``subtract`` cost O(1); :attr:`value` returns the compensated
    total.  ``reset(total)`` replaces the accumulator with an exactly
    known total (the drift guard calls it with an ``fsum`` result).
    """

    __slots__ = ("_sum", "_comp")

    def __init__(self, total: float = 0.0) -> None:
        self._sum = float(total)
        self._comp = 0.0

    def _accumulate(self, x: float) -> None:
        s = self._sum + x
        if abs(self._sum) >= abs(x):
            self._comp += (self._sum - s) + x
        else:
            self._comp += (x - s) + self._sum
        self._sum = s

    def add(self, x: float) -> None:
        self._accumulate(x)

    def subtract(self, x: float) -> None:
        self._accumulate(-x)

    @property
    def value(self) -> float:
        return self._sum + self._comp

    def reset(self, total: float = 0.0) -> None:
        self._sum = float(total)
        self._comp = 0.0

    def __repr__(self) -> str:
        return f"CompensatedSum({self.value!r})"


class SlidingExtremum:
    """Sliding minimum or maximum of a FIFO window (monotonic deque).

    The classic ascending/descending-deque algorithm: :meth:`push` drops
    dominated candidates from the back, :meth:`evict` retires the front
    candidate when the window's oldest element leaves.  Pushes and
    evictions must mirror the window's own FIFO order; both are
    amortized O(1) and :attr:`value` is O(1).
    """

    __slots__ = ("_candidates", "_is_min", "_pushed", "_evicted")

    def __init__(self, mode: str) -> None:
        if mode not in ("min", "max"):
            raise StreamError(f"extremum mode must be min or max, got {mode!r}")
        self._candidates: deque[tuple[int, float]] = deque()
        self._is_min = mode == "min"
        self._pushed = 0
        self._evicted = 0

    def push(self, x: float) -> None:
        candidates = self._candidates
        if self._is_min:
            while candidates and candidates[-1][1] >= x:
                candidates.pop()
        else:
            while candidates and candidates[-1][1] <= x:
                candidates.pop()
        candidates.append((self._pushed, x))
        self._pushed += 1

    def evict(self) -> None:
        """Note that the window's oldest element (push order) left."""
        if self._evicted >= self._pushed:
            raise StreamError("sliding extremum evicted more than was pushed")
        if self._candidates and self._candidates[0][0] == self._evicted:
            self._candidates.popleft()
        self._evicted += 1

    @property
    def value(self) -> float:
        if not self._candidates:
            raise StreamError("sliding extremum of an empty window")
        return self._candidates[0][1]

    def __len__(self) -> int:
        return self._pushed - self._evicted


class MinSizeTracker:
    """Multiset minimum over the window's sample sizes (Lemma 3).

    ``None`` sizes mark exact inputs (infinite samples) and never
    constrain the minimum; :attr:`minimum` is ``None`` when every member
    is exact.  ``add``/``discard`` are O(1) except when the current
    minimum's last copy leaves, which recomputes over the *distinct*
    sizes — O(distinct), not O(window), and only on that slide.
    """

    __slots__ = ("_counts", "_min")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._min: int | None = None

    def add(self, size: int | None) -> None:
        if size is None:
            return
        counts = self._counts
        counts[size] = counts.get(size, 0) + 1
        if self._min is None or size < self._min:
            self._min = size

    def discard(self, size: int | None) -> None:
        if size is None:
            return
        counts = self._counts
        remaining = counts.get(size, 0) - 1
        if remaining < 0:
            raise StreamError(f"sample size {size} evicted more than added")
        if remaining:
            counts[size] = remaining
        else:
            del counts[size]
            if size == self._min:
                self._min = min(counts) if counts else None

    @property
    def minimum(self) -> int | None:
        return self._min

    def __len__(self) -> int:
        return sum(self._counts.values())


class RollingWindowStats:
    """Incremental sufficient statistics of one sliding window.

    Each member is a ``(mean, variance, sample_size)`` triple (the
    moments of a distribution-valued attribute plus its Lemma-3 sample
    size), optionally timestamped for time-based eviction.  Maintained
    per slide in O(1) amortized:

    * ``count``, compensated ``mean_sum`` / ``var_sum`` (drift-guarded),
    * ``min_mean`` / ``max_mean`` via monotonic deques (opt-in),
    * ``df_size`` — the window's minimum sample size.

    Set :attr:`resums_counter` / :attr:`drift_histogram` (done by the
    operators' ``attach_metrics``) to surface drift-guard activity to
    the observability layer; they must be detached before pickling or
    deep-copying the owning operator (``Operator.detach_metrics`` does).
    """

    __slots__ = (
        "_entries",
        "_timestamps",
        "_mean_sum",
        "_var_sum",
        "_min",
        "_max",
        "_sizes",
        "resum_interval",
        "_evictions_since_resum",
        "resums",
        "last_drift",
        "resums_counter",
        "drift_histogram",
    )

    def __init__(
        self,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
        track_extrema: bool = False,
    ) -> None:
        self.resum_interval = check_resum_interval(resum_interval)
        self._entries: deque[tuple[float, float, int | None]] = deque()
        self._timestamps: deque[float] = deque()
        self._mean_sum = CompensatedSum()
        self._var_sum = CompensatedSum()
        self._min = SlidingExtremum("min") if track_extrema else None
        self._max = SlidingExtremum("max") if track_extrema else None
        self._sizes = MinSizeTracker()
        self._evictions_since_resum = 0
        #: Exact re-sums performed so far (drift-guard activity).
        self.resums = 0
        #: Drift magnitude observed at the latest re-sum.
        self.last_drift = 0.0
        self.resums_counter = None
        self.drift_histogram = None

    # -- window maintenance -------------------------------------------------

    def push(
        self,
        mean: float,
        variance: float,
        size: int | None = None,
        timestamp: float | None = None,
    ) -> None:
        """Append the newest window member (O(1))."""
        self._entries.append((mean, variance, size))
        if timestamp is not None:
            self._timestamps.append(timestamp)
        self._mean_sum.add(mean)
        self._var_sum.add(variance)
        if self._min is not None:
            self._min.push(mean)
            self._max.push(mean)
        self._sizes.add(size)

    def evict_oldest(self) -> tuple[float, float, int | None]:
        """Remove and return the oldest member (amortized O(1))."""
        if not self._entries:
            raise StreamError("evict from an empty window")
        mean, variance, size = self._entries.popleft()
        if self._timestamps:
            self._timestamps.popleft()
        self._mean_sum.subtract(mean)
        self._var_sum.subtract(variance)
        if self._min is not None:
            self._min.evict()
            self._max.evict()
        self._sizes.discard(size)
        self._evictions_since_resum += 1
        if (
            self._evictions_since_resum >= self.resum_interval
            or self._cancellation(mean, variance)
        ):
            self._resum()
        return mean, variance, size

    def evict_expired(self, cutoff: float) -> int:
        """Evict every member with ``timestamp <= cutoff``; returns count.

        Only valid when members were pushed with timestamps (time-based
        windows).  Timestamps must have been non-decreasing.
        """
        evicted = 0
        timestamps = self._timestamps
        while timestamps and timestamps[0] <= cutoff:
            self.evict_oldest()
            evicted += 1
        return evicted

    # -- drift guard --------------------------------------------------------

    #: Eviction-to-survivor magnitude ratio that forces an immediate
    #: resum.  Compensated subtraction leaves absolute error of order
    #: ``eps * |evicted|``; once the evicted member exceeds the
    #: surviving total by this factor that error can breach the 1e-9
    #: relative contract before the periodic resum fires.
    CANCELLATION_RATIO = 1e6

    def _cancellation(self, mean: float, variance: float) -> bool:
        """Did this eviction cancel away the bulk of a running sum?"""
        ratio = self.CANCELLATION_RATIO
        return (
            abs(mean) > ratio * (abs(self._mean_sum.value) + 1.0)
            or abs(variance) > ratio * (abs(self._var_sum.value) + 1.0)
        )

    def _resum(self) -> None:
        """Recompute the running sums exactly from the buffered members."""
        exact_mean = math.fsum(m for m, _, _ in self._entries)
        exact_var = math.fsum(v for _, v, _ in self._entries)
        drift = max(
            abs(self._mean_sum.value - exact_mean),
            abs(self._var_sum.value - exact_var),
        )
        self._mean_sum.reset(exact_mean)
        self._var_sum.reset(exact_var)
        self._evictions_since_resum = 0
        self.resums += 1
        self.last_drift = drift
        if self.resums_counter is not None:
            self.resums_counter.inc()
        if self.drift_histogram is not None:
            self.drift_histogram.observe(drift)

    def set_metrics(self, resums_counter, drift_histogram) -> None:
        """Bind (or, with Nones, unbind) the drift-guard metrics."""
        self.resums_counter = resums_counter
        self.drift_histogram = drift_histogram

    # -- accessors ----------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._entries)

    @property
    def mean_sum(self) -> float:
        return self._mean_sum.value

    @property
    def var_sum(self) -> float:
        # Compensated subtraction may leave a tiny negative residue on a
        # window of near-cancelling variances; variances are >= 0.
        return max(self._var_sum.value, 0.0)

    @property
    def min_mean(self) -> float:
        if self._min is None:
            raise StreamError("window was built without extrema tracking")
        return self._min.value

    @property
    def max_mean(self) -> float:
        if self._max is None:
            raise StreamError("window was built without extrema tracking")
        return self._max.value

    @property
    def df_size(self) -> int | None:
        """De facto sample size of the window aggregate (Lemma 3)."""
        return self._sizes.minimum

    @property
    def oldest_timestamp(self) -> float | None:
        return self._timestamps[0] if self._timestamps else None

    @property
    def newest_timestamp(self) -> float | None:
        return self._timestamps[-1] if self._timestamps else None

    def members(self) -> Iterator[tuple[float, float, int | None]]:
        """Iterate the current (mean, variance, size) members, oldest first."""
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
