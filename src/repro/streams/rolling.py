"""Rolling-statistics kernels for O(1)-per-slide window maintenance.

Sliding-window operators used to rebuild full ``means``/``variances``
lists and re-scan ``min(sizes)`` on every slide — O(window) per tuple.
This module provides the incremental kernels they now share:

* :class:`CompensatedSum` — a Kahan–Neumaier compensated accumulator
  with subtract-on-evict, so running sums stay accurate under the
  add/remove churn of a sliding window.
* :class:`SlidingExtremum` — a monotonic-deque sliding min/max for FIFO
  windows (amortized O(1) per slide, O(1) queries).
* :class:`MinSizeTracker` — a counter-based multiset minimum over the
  window members' sample sizes, i.e. the de facto sample size of the
  window aggregate (Definition 2 / Lemma 3) without the per-slide
  ``min(sizes)`` scan.
* :class:`RollingWindowStats` — the bundle the windowed operators hold:
  count, compensated mean/variance sums, optional extrema of the means,
  and the Lemma-3 minimum sample size, under FIFO append/evict (count-
  or time-based eviction).

Compensated subtraction is very accurate but not exact, so every
``resum_interval`` evictions (default :data:`DEFAULT_RESUM_INTERVAL`)
the sums are recomputed exactly from the buffered members with
:func:`math.fsum` — the *drift guard*.  Immediately after a re-sum the
running sums equal the exactly rounded from-scratch reference; between
re-sums they stay within ~1e-12 relative error (tests enforce 1e-9).
The observed drift magnitude and re-sum count feed the observability
layer when metrics are attached (see ``docs/ROLLING.md``).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterator

from repro.errors import StreamError

__all__ = [
    "DEFAULT_RESUM_INTERVAL",
    "CompensatedSum",
    "SlidingExtremum",
    "MinSizeTracker",
    "RollingWindowStats",
    "ChunkedWindowStats",
]

#: Evictions between exact re-sums of the compensated running sums.
DEFAULT_RESUM_INTERVAL = 4096


def check_resum_interval(resum_interval: int) -> int:
    """Validate a drift-guard period (shared by operators and learners)."""
    if resum_interval < 1:
        raise StreamError(
            f"resum interval must be >= 1, got {resum_interval}"
        )
    return int(resum_interval)


class CompensatedSum:
    """Kahan–Neumaier compensated running sum with subtract-on-evict.

    ``add``/``subtract`` cost O(1); :attr:`value` returns the compensated
    total.  ``reset(total)`` replaces the accumulator with an exactly
    known total (the drift guard calls it with an ``fsum`` result).
    """

    __slots__ = ("_sum", "_comp")

    def __init__(self, total: float = 0.0) -> None:
        self._sum = float(total)
        self._comp = 0.0

    def _accumulate(self, x: float) -> None:
        s = self._sum + x
        if abs(self._sum) >= abs(x):
            self._comp += (self._sum - s) + x
        else:
            self._comp += (x - s) + self._sum
        self._sum = s

    def add(self, x: float) -> None:
        self._accumulate(x)

    def subtract(self, x: float) -> None:
        self._accumulate(-x)

    @property
    def value(self) -> float:
        return self._sum + self._comp

    def reset(self, total: float = 0.0) -> None:
        self._sum = float(total)
        self._comp = 0.0

    def __repr__(self) -> str:
        return f"CompensatedSum({self.value!r})"


class SlidingExtremum:
    """Sliding minimum or maximum of a FIFO window (monotonic deque).

    The classic ascending/descending-deque algorithm: :meth:`push` drops
    dominated candidates from the back, :meth:`evict` retires the front
    candidate when the window's oldest element leaves.  Pushes and
    evictions must mirror the window's own FIFO order; both are
    amortized O(1) and :attr:`value` is O(1).
    """

    __slots__ = ("_candidates", "_is_min", "_pushed", "_evicted")

    def __init__(self, mode: str) -> None:
        if mode not in ("min", "max"):
            raise StreamError(f"extremum mode must be min or max, got {mode!r}")
        self._candidates: deque[tuple[int, float]] = deque()
        self._is_min = mode == "min"
        self._pushed = 0
        self._evicted = 0

    def push(self, x: float) -> None:
        candidates = self._candidates
        if self._is_min:
            while candidates and candidates[-1][1] >= x:
                candidates.pop()
        else:
            while candidates and candidates[-1][1] <= x:
                candidates.pop()
        candidates.append((self._pushed, x))
        self._pushed += 1

    def evict(self) -> None:
        """Note that the window's oldest element (push order) left."""
        if self._evicted >= self._pushed:
            raise StreamError("sliding extremum evicted more than was pushed")
        if self._candidates and self._candidates[0][0] == self._evicted:
            self._candidates.popleft()
        self._evicted += 1

    @property
    def value(self) -> float:
        if not self._candidates:
            raise StreamError("sliding extremum of an empty window")
        return self._candidates[0][1]

    def __len__(self) -> int:
        return self._pushed - self._evicted


class MinSizeTracker:
    """Multiset minimum over the window's sample sizes (Lemma 3).

    ``None`` sizes mark exact inputs (infinite samples) and never
    constrain the minimum; :attr:`minimum` is ``None`` when every member
    is exact.  ``add``/``discard`` are O(1) except when the current
    minimum's last copy leaves, which recomputes over the *distinct*
    sizes — O(distinct), not O(window), and only on that slide.
    """

    __slots__ = ("_counts", "_min")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._min: int | None = None

    def add(self, size: int | None) -> None:
        if size is None:
            return
        counts = self._counts
        counts[size] = counts.get(size, 0) + 1
        if self._min is None or size < self._min:
            self._min = size

    def discard(self, size: int | None) -> None:
        if size is None:
            return
        counts = self._counts
        remaining = counts.get(size, 0) - 1
        if remaining < 0:
            raise StreamError(f"sample size {size} evicted more than added")
        if remaining:
            counts[size] = remaining
        else:
            del counts[size]
            if size == self._min:
                self._min = min(counts) if counts else None

    @property
    def minimum(self) -> int | None:
        return self._min

    def __len__(self) -> int:
        return sum(self._counts.values())


class RollingWindowStats:
    """Incremental sufficient statistics of one sliding window.

    Each member is a ``(mean, variance, sample_size)`` triple (the
    moments of a distribution-valued attribute plus its Lemma-3 sample
    size), optionally timestamped for time-based eviction.  Maintained
    per slide in O(1) amortized:

    * ``count``, compensated ``mean_sum`` / ``var_sum`` (drift-guarded),
    * ``min_mean`` / ``max_mean`` via monotonic deques (opt-in),
    * ``df_size`` — the window's minimum sample size.

    Set :attr:`resums_counter` / :attr:`drift_histogram` (done by the
    operators' ``attach_metrics``) to surface drift-guard activity to
    the observability layer; they must be detached before pickling or
    deep-copying the owning operator (``Operator.detach_metrics`` does).
    """

    __slots__ = (
        "_entries",
        "_timestamps",
        "_mean_sum",
        "_var_sum",
        "_min",
        "_max",
        "_sizes",
        "resum_interval",
        "_evictions_since_resum",
        "resums",
        "last_drift",
        "resums_counter",
        "drift_histogram",
    )

    def __init__(
        self,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
        track_extrema: bool = False,
    ) -> None:
        self.resum_interval = check_resum_interval(resum_interval)
        self._entries: deque[tuple[float, float, int | None]] = deque()
        self._timestamps: deque[float] = deque()
        self._mean_sum = CompensatedSum()
        self._var_sum = CompensatedSum()
        self._min = SlidingExtremum("min") if track_extrema else None
        self._max = SlidingExtremum("max") if track_extrema else None
        self._sizes = MinSizeTracker()
        self._evictions_since_resum = 0
        #: Exact re-sums performed so far (drift-guard activity).
        self.resums = 0
        #: Drift magnitude observed at the latest re-sum.
        self.last_drift = 0.0
        self.resums_counter = None
        self.drift_histogram = None

    # -- window maintenance -------------------------------------------------

    def push(
        self,
        mean: float,
        variance: float,
        size: int | None = None,
        timestamp: float | None = None,
    ) -> None:
        """Append the newest window member (O(1))."""
        self._entries.append((mean, variance, size))
        if timestamp is not None:
            self._timestamps.append(timestamp)
        self._mean_sum.add(mean)
        self._var_sum.add(variance)
        if self._min is not None:
            self._min.push(mean)
            self._max.push(mean)
        self._sizes.add(size)

    def evict_oldest(self) -> tuple[float, float, int | None]:
        """Remove and return the oldest member (amortized O(1))."""
        if not self._entries:
            raise StreamError("evict from an empty window")
        mean, variance, size = self._entries.popleft()
        if self._timestamps:
            self._timestamps.popleft()
        self._mean_sum.subtract(mean)
        self._var_sum.subtract(variance)
        if self._min is not None:
            self._min.evict()
            self._max.evict()
        self._sizes.discard(size)
        self._evictions_since_resum += 1
        if (
            self._evictions_since_resum >= self.resum_interval
            or self._cancellation(mean, variance)
        ):
            self._resum()
        return mean, variance, size

    def evict_expired(self, cutoff: float) -> int:
        """Evict every member with ``timestamp <= cutoff``; returns count.

        Only valid when members were pushed with timestamps (time-based
        windows).  Timestamps must have been non-decreasing.
        """
        evicted = 0
        timestamps = self._timestamps
        while timestamps and timestamps[0] <= cutoff:
            self.evict_oldest()
            evicted += 1
        return evicted

    # -- drift guard --------------------------------------------------------

    #: Eviction-to-survivor magnitude ratio that forces an immediate
    #: resum.  Compensated subtraction leaves absolute error of order
    #: ``eps * |evicted|``; once the evicted member exceeds the
    #: surviving total by this factor that error can breach the 1e-9
    #: relative contract before the periodic resum fires.
    CANCELLATION_RATIO = 1e6

    def _cancellation(self, mean: float, variance: float) -> bool:
        """Did this eviction cancel away the bulk of a running sum?"""
        ratio = self.CANCELLATION_RATIO
        return (
            abs(mean) > ratio * (abs(self._mean_sum.value) + 1.0)
            or abs(variance) > ratio * (abs(self._var_sum.value) + 1.0)
        )

    def _resum(self) -> None:
        """Recompute the running sums exactly from the buffered members."""
        exact_mean = math.fsum(m for m, _, _ in self._entries)
        exact_var = math.fsum(v for _, v, _ in self._entries)
        drift = max(
            abs(self._mean_sum.value - exact_mean),
            abs(self._var_sum.value - exact_var),
        )
        self._mean_sum.reset(exact_mean)
        self._var_sum.reset(exact_var)
        self._evictions_since_resum = 0
        self.resums += 1
        self.last_drift = drift
        if self.resums_counter is not None:
            self.resums_counter.inc()
        if self.drift_histogram is not None:
            self.drift_histogram.observe(drift)

    def set_metrics(self, resums_counter, drift_histogram) -> None:
        """Bind (or, with Nones, unbind) the drift-guard metrics."""
        self.resums_counter = resums_counter
        self.drift_histogram = drift_histogram

    # -- accessors ----------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._entries)

    @property
    def mean_sum(self) -> float:
        return self._mean_sum.value

    @property
    def var_sum(self) -> float:
        # Compensated subtraction may leave a tiny negative residue on a
        # window of near-cancelling variances; variances are >= 0.
        return max(self._var_sum.value, 0.0)

    @property
    def min_mean(self) -> float:
        if self._min is None:
            raise StreamError("window was built without extrema tracking")
        return self._min.value

    @property
    def max_mean(self) -> float:
        if self._max is None:
            raise StreamError("window was built without extrema tracking")
        return self._max.value

    @property
    def df_size(self) -> int | None:
        """De facto sample size of the window aggregate (Lemma 3)."""
        return self._sizes.minimum

    @property
    def oldest_timestamp(self) -> float | None:
        return self._timestamps[0] if self._timestamps else None

    @property
    def newest_timestamp(self) -> float | None:
        return self._timestamps[-1] if self._timestamps else None

    def members(self) -> Iterator[tuple[float, float, int | None]]:
        """Iterate the current (mean, variance, size) members, oldest first."""
        return iter(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes (feeds the ``state.bytes`` gauge).

        Dominated by the member buffer: each deque entry is a 3-tuple of
        boxed floats (~120 bytes with the deque block share); extrema
        deques and the size multiset add a bounded constant factor.
        """
        members = len(self._entries)
        extrema = (
            (len(self._min) + len(self._max)) * 56
            if self._min is not None
            else 0
        )
        return (
            160
            + members * 120
            + len(self._timestamps) * 32
            + len(self._sizes._counts) * 72
            + extrema
        )

    def __len__(self) -> int:
        return len(self._entries)


class _StatsChunk:
    """Add-only sufficient statistics of one chunk of window members."""

    __slots__ = (
        "count", "mean_sum", "var_sum", "min_mean", "max_mean", "min_size"
    )

    def __init__(self) -> None:
        self.count = 0
        self.mean_sum = 0.0
        self.var_sum = 0.0
        self.min_mean = math.inf
        self.max_mean = -math.inf
        self.min_size: int | None = None

    def push(self, mean: float, variance: float, size: int | None) -> None:
        self.count += 1
        self.mean_sum += mean
        self.var_sum += variance
        if mean < self.min_mean:
            self.min_mean = mean
        if mean > self.max_mean:
            self.max_mean = mean
        if size is not None and (
            self.min_size is None or size < self.min_size
        ):
            self.min_size = size

    def merged_with(self, other: "_StatsChunk") -> "_StatsChunk":
        out = _StatsChunk()
        out.count = self.count + other.count
        out.mean_sum = self.mean_sum + other.mean_sum
        out.var_sum = self.var_sum + other.var_sum
        out.min_mean = min(self.min_mean, other.min_mean)
        out.max_mean = max(self.max_mean, other.max_mean)
        sizes = [
            s for s in (self.min_size, other.min_size) if s is not None
        ]
        out.min_size = min(sizes) if sizes else None
        return out


class ChunkedWindowStats:
    """Bounded-memory drop-in for :class:`RollingWindowStats`.

    Where ``RollingWindowStats`` buffers every window member (O(window)
    per group — ruinous for GROUP BY over millions of keys), this keeps
    a ring of add-only chunk statistics with whole-chunk eviction, the
    same scheme as :class:`repro.learning.sketch.window.
    SketchWindowState`: ~O(chunk_count) memory for any window size, with
    the expired-but-retained tail quantified as :attr:`staleness`
    (bounded near ``1 / chunk_count``).  Running sums are *scaled* to
    the live count, so ``avg`` reads the retained average and ``sum``
    its live-count extrapolation; ``min_mean``/``max_mean`` and
    ``df_size`` range over the retained mass (conservative for Lemma 3:
    a superset minimum is never larger than the true one).

    There are no compensated subtractions here — chunk sums are
    add-only — so there is no drift guard; ``resum_interval`` is
    accepted for signature compatibility and ignored, ``set_metrics``
    is a no-op.  ``evict_oldest`` returns ``None``: the evicted
    member's values are no longer individually known.
    """

    __slots__ = (
        "chunk_count", "chunk_size", "_chunks", "pending", "_retained",
        "track_extrema",
    )

    #: Ring-size target; live chunks stay within [count, 2 * count].
    DEFAULT_CHUNK_COUNT = 16

    def __init__(
        self,
        resum_interval: int = DEFAULT_RESUM_INTERVAL,
        track_extrema: bool = True,
        chunk_count: int = DEFAULT_CHUNK_COUNT,
        chunk_size: int = 64,
    ) -> None:
        check_resum_interval(resum_interval)
        if chunk_count < 2:
            raise StreamError(
                f"chunk count must be >= 2, got {chunk_count}"
            )
        if chunk_size < 1:
            raise StreamError(f"chunk size must be >= 1, got {chunk_size}")
        self.chunk_count = int(chunk_count)
        self.chunk_size = int(chunk_size)
        self._chunks: list[_StatsChunk] = []
        self.pending = 0
        self._retained = 0
        self.track_extrema = track_extrema

    # -- window maintenance -------------------------------------------------

    def push(
        self,
        mean: float,
        variance: float,
        size: int | None = None,
        timestamp: float | None = None,
    ) -> None:
        if timestamp is not None:
            raise StreamError(
                "ChunkedWindowStats does not support time-based windows"
            )
        chunks = self._chunks
        if not chunks or chunks[-1].count >= self.chunk_size:
            chunks.append(_StatsChunk())
            if len(chunks) > 2 * self.chunk_count:
                merged = [
                    chunks[i].merged_with(chunks[i + 1])
                    for i in range(0, len(chunks) - 1, 2)
                ]
                if len(chunks) % 2:
                    merged.append(chunks[-1])
                self._chunks = chunks = merged
                self.chunk_size *= 2
        chunks[-1].push(mean, variance, size)
        self._retained += 1

    def evict_oldest(self) -> None:
        """Logically expire the oldest member (whole-chunk reclamation)."""
        if self.count < 1:
            raise StreamError("evict from an empty window")
        self.pending += 1
        chunks = self._chunks
        while len(chunks) > 1 and self.pending >= chunks[0].count:
            dropped = chunks.pop(0)
            self.pending -= dropped.count
            self._retained -= dropped.count

    def set_metrics(self, resums_counter, drift_histogram) -> None:
        """No drift guard to bind: chunk statistics are add-only."""

    # -- accessors ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Live (logical) window fill: retained minus pending-evicted."""
        return self._retained - self.pending

    @property
    def staleness(self) -> float:
        """Fraction of retained mass that has already logically expired."""
        return self.pending / self._retained if self._retained else 0.0

    @property
    def mean_sum(self) -> float:
        """Retained mean sum scaled to the live count.

        ``mean_sum / count`` is then exactly the retained average, and
        ``sum`` aggregates extrapolate it over the live membership.
        """
        return self._scaled(math.fsum(c.mean_sum for c in self._chunks))

    @property
    def var_sum(self) -> float:
        return max(
            self._scaled(math.fsum(c.var_sum for c in self._chunks)), 0.0
        )

    def _scaled(self, retained_sum: float) -> float:
        if self.pending == 0:
            return retained_sum
        return retained_sum * (self.count / self._retained)

    @property
    def min_mean(self) -> float:
        if not self.track_extrema:
            raise StreamError("window was built without extrema tracking")
        if not self._chunks:
            raise StreamError("sliding extremum of an empty window")
        return min(c.min_mean for c in self._chunks)

    @property
    def max_mean(self) -> float:
        if not self.track_extrema:
            raise StreamError("window was built without extrema tracking")
        if not self._chunks:
            raise StreamError("sliding extremum of an empty window")
        return max(c.max_mean for c in self._chunks)

    @property
    def df_size(self) -> int | None:
        """Minimum sample size over the retained members (Lemma 3)."""
        sizes = [
            c.min_size for c in self._chunks if c.min_size is not None
        ]
        return min(sizes) if sizes else None

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes (feeds the ``state.bytes`` gauge)."""
        return 120 + len(self._chunks) * 110

    def __len__(self) -> int:
        return self.count
