"""Sliding and tumbling windows over stream tuples.

Windows are passive buffers: operators push items in and receive the
evicted ones back, which enables incremental aggregate maintenance
(add the new contribution, subtract the evicted one).  The incremental
statistics themselves — compensated sums, sliding extrema, minimum
sample sizes — live in :mod:`repro.streams.rolling`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.errors import StreamError

__all__ = ["CountWindow", "TumblingWindow", "TimeWindow"]

T = TypeVar("T")


class CountWindow(Generic[T]):
    """Count-based sliding window holding the most recent ``size`` items."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = size
        self._items: deque[T] = deque()

    def add(self, item: T) -> T | None:
        """Insert an item; returns the evicted item once the window is full."""
        self._items.append(item)
        if len(self._items) > self.size:
            return self._items.popleft()
        return None

    @property
    def is_full(self) -> bool:
        return len(self._items) == self.size

    def clear(self) -> None:
        """Drop every buffered item (reset between replays)."""
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)


class TumblingWindow(Generic[T]):
    """Non-overlapping window: fills up to ``size`` items, then fires."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise StreamError(f"window size must be >= 1, got {size}")
        self.size = size
        self._items: list[T] = []

    def add(self, item: T) -> list[T] | None:
        """Insert an item; returns the full batch when the window closes."""
        self._items.append(item)
        if len(self._items) == self.size:
            batch, self._items = self._items, []
            return batch
        return None

    def flush(self) -> list[T]:
        """Return and clear any partial batch (end of stream)."""
        batch, self._items = self._items, []
        return batch

    def __len__(self) -> int:
        return len(self._items)


class TimeWindow(Generic[T]):
    """Time-based sliding window keeping items newer than ``duration``."""

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise StreamError(f"window duration must be > 0, got {duration}")
        self.duration = duration
        self._items: deque[tuple[float, T]] = deque()

    def add(self, timestamp: float, item: T) -> list[T]:
        """Insert a timestamped item; returns all items that expired."""
        if self._items and timestamp < self._items[-1][0]:
            raise StreamError(
                "timestamps must be non-decreasing: "
                f"{timestamp} after {self._items[-1][0]}"
            )
        self._items.append((timestamp, item))
        evicted = []
        cutoff = timestamp - self.duration
        while self._items and self._items[0][0] <= cutoff:
            evicted.append(self._items.popleft()[1])
        return evicted

    @property
    def oldest_timestamp(self) -> float | None:
        return self._items[0][0] if self._items else None

    @property
    def newest_timestamp(self) -> float | None:
        return self._items[-1][0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return (item for _, item in self._items)
