"""Histogram distributions — the workhorse representation of the paper.

A histogram has the form ``{(b_i, p_i) | 1 <= i <= b}`` where each bucket
``b_i`` is a half-open interval ``[lo, hi)`` of values and ``p_i`` is its
probability.  The paper (§II-B) generalises each ``p_i`` to a confidence
interval; that annotation lives in :mod:`repro.core.accuracy` and is
*attached to* a histogram, leaving this class a pure distribution.

Within a bucket, mass is assumed uniform, which gives closed forms for the
mean, variance, cdf, and sampling.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = ["HistogramDistribution"]

_PROB_TOLERANCE = 1e-9


class HistogramDistribution(Distribution):
    """A piecewise-uniform distribution over contiguous buckets.

    Parameters
    ----------
    edges:
        Monotonically increasing bucket boundaries; ``len(edges) == b + 1``
        for ``b`` buckets.
    probabilities:
        Per-bucket probabilities.  They are normalised to sum to one (the
        paper's "implicit normalization step"), but must be non-negative and
        not all zero.
    """

    __slots__ = ("edges", "probabilities", "_cum")

    def __init__(
        self,
        edges: Sequence[float],
        probabilities: Sequence[float],
    ) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        probs_arr = np.asarray(probabilities, dtype=float)
        if edges_arr.ndim != 1 or probs_arr.ndim != 1:
            raise DistributionError("edges and probabilities must be 1-D")
        if len(edges_arr) != len(probs_arr) + 1:
            raise DistributionError(
                f"need len(edges) == len(probabilities) + 1, got "
                f"{len(edges_arr)} edges for {len(probs_arr)} buckets"
            )
        if len(probs_arr) == 0:
            raise DistributionError("histogram needs at least one bucket")
        if np.any(np.diff(edges_arr) <= 0):
            raise DistributionError("edges must be strictly increasing")
        if np.any(probs_arr < -_PROB_TOLERANCE):
            raise DistributionError("bucket probabilities must be >= 0")
        probs_arr = np.clip(probs_arr, 0.0, None)
        total = probs_arr.sum()
        if total <= 0:
            raise DistributionError("bucket probabilities must not all be 0")
        self.edges = edges_arr
        self.probabilities = probs_arr / total
        self._cum = np.concatenate(([0.0], np.cumsum(self.probabilities)))
        # Guard against floating-point drift in the final cumulative value.
        self._cum[-1] = 1.0

    # -- basic accessors ---------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Number of buckets ``b``."""
        return len(self.probabilities)

    def bucket_bounds(self, i: int) -> tuple[float, float]:
        """``[lo, hi)`` bounds of bucket ``i`` (0-based)."""
        return float(self.edges[i]), float(self.edges[i + 1])

    def bucket_index(self, x: float) -> int:
        """Index of the bucket containing ``x``.

        Values below the support map to bucket 0 and values at or above the
        last edge map to the last bucket; this matches how learners assign
        out-of-range observations when a histogram is reused as a template.
        """
        idx = int(np.searchsorted(self.edges, x, side="right")) - 1
        return min(max(idx, 0), self.bucket_count - 1)

    # -- Distribution interface --------------------------------------------

    def mean(self) -> float:
        mids = (self.edges[:-1] + self.edges[1:]) / 2.0
        return float(np.dot(mids, self.probabilities))

    def variance(self) -> float:
        lo = self.edges[:-1]
        hi = self.edges[1:]
        # E[X^2] for a uniform on [lo, hi) is (lo^2 + lo*hi + hi^2) / 3.
        second = (lo * lo + lo * hi + hi * hi) / 3.0
        ex2 = float(np.dot(second, self.probabilities))
        mu = self.mean()
        return max(ex2 - mu * mu, 0.0)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        buckets = rng.choice(
            self.bucket_count, size=size, p=self.probabilities
        )
        lo = self.edges[buckets]
        hi = self.edges[buckets + 1]
        return lo + rng.random(size) * (hi - lo)

    def cdf(self, x: float) -> float:
        if x <= self.edges[0]:
            return 0.0
        if x >= self.edges[-1]:
            return 1.0
        i = int(np.searchsorted(self.edges, x, side="right")) - 1
        i = min(i, self.bucket_count - 1)
        lo, hi = self.edges[i], self.edges[i + 1]
        within = (x - lo) / (hi - lo)
        return float(self._cum[i] + within * self.probabilities[i])

    def quantile(self, q: float) -> float:
        """Inverse cdf by linear interpolation within the bucket."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(
                f"quantile level must be in [0,1], got {q}"
            )
        if q <= 0.0:
            return float(self.edges[0])
        if q >= 1.0:
            return float(self.edges[-1])
        idx = int(np.searchsorted(self._cum, q, side="left")) - 1
        idx = min(max(idx, 0), self.bucket_count - 1)
        # Skip zero-probability buckets whose cumulative equals q.
        while idx < self.bucket_count - 1 and self.probabilities[idx] == 0.0:
            idx += 1
        lo, hi = self.edges[idx], self.edges[idx + 1]
        mass = self.probabilities[idx]
        if mass == 0.0:
            return float(lo)
        within = (q - self._cum[idx]) / mass
        return float(lo + within * (hi - lo))

    # -- convenience constructors ------------------------------------------

    @classmethod
    def from_counts(
        cls, edges: Sequence[float], counts: Sequence[int]
    ) -> "HistogramDistribution":
        """Build a histogram from raw observation counts per bucket."""
        counts_arr = np.asarray(counts, dtype=float)
        if np.any(counts_arr < 0):
            raise DistributionError("counts must be non-negative")
        return cls(edges, counts_arr)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HistogramDistribution)
            and np.array_equal(other.edges, self.edges)
            and np.allclose(other.probabilities, self.probabilities)
        )

    def __hash__(self) -> int:
        return hash(
            ("HistogramDistribution", self.edges.tobytes(),
             self.probabilities.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"HistogramDistribution({self.bucket_count} buckets on "
            f"[{self.edges[0]:.4g}, {self.edges[-1]:.4g}))"
        )
