"""Exact convolution of histogram distributions.

The sum of two independent piecewise-uniform random variables is
piecewise-quadratic; representable mass-exactly on any bucketisation.
For each pair of input buckets ``U[a1,b1) + U[a2,b2)`` the sum follows a
trapezoidal distribution with a closed-form cdf, so the probability mass
falling into each output bucket can be computed exactly (no Monte
Carlo).  The result is a histogram whose *bucket masses* are exact even
though within-bucket shape is re-flattened — the same approximation the
input histograms already make.

Cost is O(b1 * b2 * b_out); fine for the tens-of-buckets histograms the
system learns.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.histogram import HistogramDistribution
from repro.errors import DistributionError

__all__ = ["trapezoid_cdf", "convolve_histograms"]


def trapezoid_cdf(
    x: np.ndarray, s: float, w1: float, w2: float
) -> np.ndarray:
    """Cdf of U[0,w1) + U[0,w2) shifted to start at ``s``.

    ``w1 <= w2`` is required; the support is [s, s + w1 + w2].
    """
    if w1 <= 0 or w2 <= 0:
        raise DistributionError("bucket widths must be positive")
    if w1 > w2:
        raise DistributionError("trapezoid_cdf needs w1 <= w2")
    t = np.asarray(x, dtype=float) - s
    total = w1 + w2
    result = np.empty_like(t)

    rising = t < w1
    flat = (t >= w1) & (t < w2)
    falling = (t >= w2) & (t < total)

    clamped = np.clip(t, 0.0, total)
    result[rising] = np.clip(t[rising], 0.0, None) ** 2 / (2.0 * w1 * w2)
    result[flat] = (2.0 * t[flat] - w1) / (2.0 * w2)
    result[falling] = 1.0 - (total - t[falling]) ** 2 / (2.0 * w1 * w2)
    result[t >= total] = 1.0
    result[t <= 0.0] = 0.0
    del clamped
    return result


def convolve_histograms(
    left: HistogramDistribution,
    right: HistogramDistribution,
    bucket_count: int | None = None,
    subtract: bool = False,
) -> HistogramDistribution:
    """Histogram of ``X + Y`` (or ``X - Y``) for independent histograms.

    Output bucket masses are exact; ``bucket_count`` defaults to the
    larger input bucket count (capped below at 8 so coarse inputs do not
    produce a degenerate result).
    """
    if bucket_count is None:
        bucket_count = max(left.bucket_count, right.bucket_count, 8)
    if bucket_count < 1:
        raise DistributionError(
            f"bucket count must be >= 1, got {bucket_count}"
        )

    right_edges = -right.edges[::-1] if subtract else right.edges
    right_probs = right.probabilities[::-1] if subtract else right.probabilities

    lo = float(left.edges[0] + right_edges[0])
    hi = float(left.edges[-1] + right_edges[-1])
    if hi <= lo:
        hi = lo + 1.0
    out_edges = np.linspace(lo, hi, bucket_count + 1)
    masses = np.zeros(bucket_count)

    for i in range(left.bucket_count):
        p_i = float(left.probabilities[i])
        if p_i == 0.0:
            continue
        a1, b1 = float(left.edges[i]), float(left.edges[i + 1])
        for j in range(len(right_probs)):
            p_j = float(right_probs[j])
            if p_j == 0.0:
                continue
            a2, b2 = float(right_edges[j]), float(right_edges[j + 1])
            s = a1 + a2
            w_small, w_big = sorted((b1 - a1, b2 - a2))
            cdf_values = trapezoid_cdf(out_edges, s, w_small, w_big)
            masses += p_i * p_j * np.diff(cdf_values)

    total = masses.sum()
    if total <= 0:
        raise DistributionError("convolution produced no probability mass")
    return HistogramDistribution(out_edges, masses / total)
