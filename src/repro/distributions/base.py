"""Abstract distribution interface and the degenerate (deterministic) case.

Every attribute of an uncertain tuple is conceptually a random variable.  The
:class:`Distribution` ABC is the contract the rest of the system programs
against: moments, sampling, and tail probabilities.  A plain deterministic
value is the special case :class:`Deterministic` — a distribution with all
mass on one point — so deterministic and probabilistic fields flow through
the same operators.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import DistributionError

__all__ = ["Distribution", "Deterministic", "as_distribution"]


class Distribution(abc.ABC):
    """A univariate probability distribution used as an attribute value.

    Subclasses must implement :meth:`mean`, :meth:`variance`,
    :meth:`sample`, and :meth:`cdf`.  Everything else has sensible defaults
    expressed in terms of those four.
    """

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the random variable."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the random variable."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` iid values; always returns a 1-D float array."""

    @abc.abstractmethod
    def cdf(self, x: float) -> float:
        """P[X <= x]."""

    def std(self) -> float:
        """Standard deviation, sqrt of :meth:`variance`."""
        return float(np.sqrt(self.variance()))

    def prob_greater(self, threshold: float) -> float:
        """P[X > threshold]."""
        return 1.0 - self.cdf(threshold)

    def prob_less(self, threshold: float) -> float:
        """P[X < threshold] (equals the cdf for continuous distributions)."""
        return self.cdf(threshold)

    def is_deterministic(self) -> bool:
        """True when all probability mass sits on a single value."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(mean={self.mean():.4g}, "
            f"var={self.variance():.4g})"
        )


class Deterministic(Distribution):
    """A single value with probability 1 — a traditional database field."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)
        if not np.isfinite(self.value):
            raise DistributionError(
                f"deterministic value must be finite, got {value!r}"
            )

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.full(size, self.value)

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def is_deterministic(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Deterministic) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Deterministic", self.value))

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


def as_distribution(value: "Distribution | float | int") -> Distribution:
    """Coerce a raw number into a :class:`Deterministic` distribution.

    Distributions pass through unchanged; anything else must be a real
    number.  This is the single coercion point used by tuple construction
    and expression evaluation.
    """
    if isinstance(value, Distribution):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Deterministic(float(value))
    raise DistributionError(
        f"cannot interpret {value!r} as a distribution or number"
    )
