"""Parametric distribution families used in the paper's experiments (§V-A).

The synthetic workloads draw from five families: exponential(λ=1),
Gamma(k=2, θ=2), normal(μ=1, σ²=1), uniform(0,1), and Weibull(λ=1, k=1).
The normal case is :class:`~repro.distributions.gaussian.GaussianDistribution`;
the other four live here, each a thin strongly-typed wrapper over the
matching :mod:`scipy.stats` frozen distribution.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = [
    "UniformDistribution",
    "ExponentialDistribution",
    "GammaDistribution",
    "WeibullDistribution",
]


class _ScipyBacked(Distribution):
    """Shared plumbing for wrappers around a frozen scipy distribution."""

    __slots__ = ("_frozen",)

    def mean(self) -> float:
        return float(self._frozen.mean())

    def variance(self) -> float:
        return float(self._frozen.var())

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return np.asarray(self._frozen.rvs(size=size, random_state=rng))

    def cdf(self, x: float) -> float:
        return float(self._frozen.cdf(x))

    def quantile(self, q: float) -> float:
        """Inverse cdf (percent-point function)."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0,1], got {q}")
        return float(self._frozen.ppf(q))


class UniformDistribution(_ScipyBacked):
    """Continuous uniform on [low, high)."""

    __slots__ = ("low", "high")

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if not high > low:
            raise DistributionError(f"need high > low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)
        self._frozen = stats.uniform(loc=self.low, scale=self.high - self.low)

    def __repr__(self) -> str:
        return f"UniformDistribution({self.low:.4g}, {self.high:.4g})"


class ExponentialDistribution(_ScipyBacked):
    """Exponential with rate ``lam`` (mean 1/lam)."""

    __slots__ = ("lam",)

    def __init__(self, lam: float = 1.0) -> None:
        if lam <= 0:
            raise DistributionError(f"rate must be > 0, got {lam}")
        self.lam = float(lam)
        self._frozen = stats.expon(scale=1.0 / self.lam)

    def __repr__(self) -> str:
        return f"ExponentialDistribution(lam={self.lam:.4g})"


class GammaDistribution(_ScipyBacked):
    """Gamma with shape ``k`` and scale ``theta`` (mean k*theta)."""

    __slots__ = ("k", "theta")

    def __init__(self, k: float = 2.0, theta: float = 2.0) -> None:
        if k <= 0 or theta <= 0:
            raise DistributionError(
                f"shape and scale must be > 0, got k={k}, theta={theta}"
            )
        self.k = float(k)
        self.theta = float(theta)
        self._frozen = stats.gamma(a=self.k, scale=self.theta)

    def __repr__(self) -> str:
        return f"GammaDistribution(k={self.k:.4g}, theta={self.theta:.4g})"


class WeibullDistribution(_ScipyBacked):
    """Weibull with scale ``lam`` and shape ``k``.

    With k=1 it coincides with the exponential of rate 1/lam — exactly the
    paper's parameterisation (λ=1, k=1).
    """

    __slots__ = ("lam", "k")

    def __init__(self, lam: float = 1.0, k: float = 1.0) -> None:
        if lam <= 0 or k <= 0:
            raise DistributionError(
                f"scale and shape must be > 0, got lam={lam}, k={k}"
            )
        self.lam = float(lam)
        self.k = float(k)
        self._frozen = stats.weibull_min(c=self.k, scale=self.lam)

    def __repr__(self) -> str:
        return f"WeibullDistribution(lam={self.lam:.4g}, k={self.k:.4g})"
