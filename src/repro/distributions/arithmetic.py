"""Monte-Carlo arithmetic on random variables.

§V-C of the paper generates random queries by drawing uniformly from six
operators: ``+``, ``-``, ``*``, ``/``, ``SQRT(ABS(.))`` and ``SQUARE``.
This module implements those operators on distributions by sampling: the
result of combining r.v.'s is an :class:`EmpiricalDistribution` over the
values of the expression applied sample-wise — exactly the "sequence of
values of an output random variable" that BOOTSTRAP-ACCURACY-INFO consumes.

Division guards against near-zero denominators by nudging them away from
zero (the paper's random queries implicitly assume the expression is
evaluable; real engines do the same to avoid NaN storms).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.errors import DistributionError

__all__ = [
    "BINARY_OPERATORS",
    "UNARY_OPERATORS",
    "combine",
    "apply_unary",
    "safe_divide",
]

_DIV_EPSILON = 1e-9


def safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division with near-zero denominators nudged to ±eps."""
    denom = np.where(
        np.abs(denominator) < _DIV_EPSILON,
        np.where(denominator >= 0, _DIV_EPSILON, -_DIV_EPSILON),
        denominator,
    )
    return numerator / denom


BINARY_OPERATORS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": safe_divide,
}

UNARY_OPERATORS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sqrtabs": lambda x: np.sqrt(np.abs(x)),
    "square": np.square,
    "neg": np.negative,
    "abs": np.abs,
}


def combine(
    op: str,
    left: Distribution,
    right: Distribution,
    rng: np.random.Generator,
    mc_samples: int = 1000,
) -> EmpiricalDistribution:
    """Apply a binary operator to two independent r.v.'s via Monte Carlo."""
    try:
        fn = BINARY_OPERATORS[op]
    except KeyError:
        raise DistributionError(f"unknown binary operator {op!r}") from None
    xs = left.sample(rng, mc_samples)
    ys = right.sample(rng, mc_samples)
    return EmpiricalDistribution(fn(xs, ys))


def apply_unary(
    op: str,
    operand: Distribution,
    rng: np.random.Generator,
    mc_samples: int = 1000,
) -> EmpiricalDistribution:
    """Apply a unary operator to an r.v. via Monte Carlo."""
    try:
        fn = UNARY_OPERATORS[op]
    except KeyError:
        raise DistributionError(f"unknown unary operator {op!r}") from None
    xs = operand.sample(rng, mc_samples)
    return EmpiricalDistribution(fn(xs))
