"""Probability distribution substrate for the uncertain stream database.

A :class:`~repro.distributions.base.Distribution` is a first-class attribute
value in an uncertain tuple.  The paper's query processing operates either
directly on distributions (closed-form Gaussian arithmetic) or via Monte
Carlo over samples drawn from them (:mod:`repro.distributions.arithmetic`).
"""

from repro.distributions.base import Distribution, Deterministic
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.parametric import (
    UniformDistribution,
    ExponentialDistribution,
    GammaDistribution,
    WeibullDistribution,
)
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.arithmetic import (
    BINARY_OPERATORS,
    UNARY_OPERATORS,
    combine,
    apply_unary,
)
from repro.distributions.convolution import convolve_histograms

__all__ = [
    "Distribution",
    "Deterministic",
    "HistogramDistribution",
    "GaussianDistribution",
    "EmpiricalDistribution",
    "DiscreteDistribution",
    "UniformDistribution",
    "ExponentialDistribution",
    "GammaDistribution",
    "WeibullDistribution",
    "MixtureDistribution",
    "BINARY_OPERATORS",
    "UNARY_OPERATORS",
    "combine",
    "apply_unary",
    "convolve_histograms",
]
