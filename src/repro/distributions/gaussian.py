"""Gaussian distributions with the closed-form arithmetic the paper relies on.

§V-C's throughput experiment learns Gaussians from raw points and runs a
sliding-window AVG whose result is again a Gaussian; that needs exact
affine arithmetic on independent Gaussians, implemented here.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import stats

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = ["GaussianDistribution"]


class GaussianDistribution(Distribution):
    """A normal distribution N(mu, sigma^2)."""

    __slots__ = ("mu", "sigma2")

    def __init__(self, mu: float, sigma2: float) -> None:
        if sigma2 < 0:
            raise DistributionError(f"variance must be >= 0, got {sigma2}")
        if not (np.isfinite(mu) and np.isfinite(sigma2)):
            raise DistributionError("Gaussian parameters must be finite")
        self.mu = float(mu)
        self.sigma2 = float(sigma2)

    def mean(self) -> float:
        return self.mu

    def variance(self) -> float:
        return self.sigma2

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.normal(self.mu, np.sqrt(self.sigma2), size)

    def cdf(self, x: float) -> float:
        if self.sigma2 == 0.0:
            return 1.0 if x >= self.mu else 0.0
        # erfc-based normal cdf: exact, and far cheaper than the
        # scipy.stats front-end on the per-tuple stream path.
        z = (x - self.mu) / math.sqrt(2.0 * self.sigma2)
        return 0.5 * math.erfc(-z)

    def quantile(self, q: float) -> float:
        """Inverse cdf."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0,1], got {q}")
        return float(stats.norm.ppf(q, loc=self.mu, scale=math.sqrt(self.sigma2)))

    # -- exact arithmetic on independent Gaussians ---------------------------

    def shifted(self, constant: float) -> "GaussianDistribution":
        """X + c."""
        return GaussianDistribution(self.mu + constant, self.sigma2)

    def scaled(self, factor: float) -> "GaussianDistribution":
        """c * X."""
        return GaussianDistribution(
            self.mu * factor, self.sigma2 * factor * factor
        )

    def plus(self, other: "GaussianDistribution") -> "GaussianDistribution":
        """X + Y for independent Gaussians."""
        return GaussianDistribution(
            self.mu + other.mu, self.sigma2 + other.sigma2
        )

    def minus(self, other: "GaussianDistribution") -> "GaussianDistribution":
        """X - Y for independent Gaussians."""
        return GaussianDistribution(
            self.mu - other.mu, self.sigma2 + other.sigma2
        )

    @staticmethod
    def average(
        gaussians: Sequence["GaussianDistribution"],
    ) -> "GaussianDistribution":
        """AVG of independent Gaussians — the sliding-window AVG result.

        For independent X_1..X_k, mean(X) ~ N(mean(mu_i), sum(sigma2_i)/k^2).
        """
        if not gaussians:
            raise DistributionError("average of zero Gaussians is undefined")
        k = len(gaussians)
        mu = sum(g.mu for g in gaussians) / k
        sigma2 = sum(g.sigma2 for g in gaussians) / (k * k)
        return GaussianDistribution(mu, sigma2)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GaussianDistribution)
            and other.mu == self.mu
            and other.sigma2 == self.sigma2
        )

    def __hash__(self) -> int:
        return hash(("GaussianDistribution", self.mu, self.sigma2))

    def __repr__(self) -> str:
        return f"GaussianDistribution(mu={self.mu:.4g}, sigma2={self.sigma2:.4g})"
