"""Finite discrete distributions over arbitrary numeric support points."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = ["DiscreteDistribution"]


class DiscreteDistribution(Distribution):
    """P[X = v_i] = p_i over a finite set of support points.

    Support points are deduplicated and sorted; probabilities of duplicate
    points are merged, and the vector is normalised to sum to one.
    """

    __slots__ = ("support", "probabilities", "_cum")

    def __init__(
        self, support: Sequence[float], probabilities: Sequence[float]
    ) -> None:
        values = np.asarray(support, dtype=float).ravel()
        probs = np.asarray(probabilities, dtype=float).ravel()
        if values.size != probs.size:
            raise DistributionError(
                f"support and probabilities differ in length: "
                f"{values.size} vs {probs.size}"
            )
        if values.size == 0:
            raise DistributionError("discrete distribution needs >= 1 point")
        if np.any(probs < 0):
            raise DistributionError("probabilities must be >= 0")
        total = probs.sum()
        if total <= 0:
            raise DistributionError("probabilities must not all be 0")

        order = np.argsort(values)
        values = values[order]
        probs = probs[order] / total
        # Merge duplicate support points.
        uniq, inverse = np.unique(values, return_inverse=True)
        merged = np.zeros_like(uniq)
        np.add.at(merged, inverse, probs)

        self.support = uniq
        self.probabilities = merged
        self._cum = np.cumsum(merged)
        self._cum[-1] = 1.0

    def mean(self) -> float:
        return float(np.dot(self.support, self.probabilities))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self.support - mu) ** 2, self.probabilities))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.choice(self.support, size=size, p=self.probabilities)

    def cdf(self, x: float) -> float:
        idx = int(np.searchsorted(self.support, x, side="right"))
        if idx == 0:
            return 0.0
        return float(self._cum[idx - 1])

    def prob_of(self, value: float) -> float:
        """Point mass P[X = value] (0.0 for values outside the support)."""
        idx = int(np.searchsorted(self.support, value))
        if idx < self.support.size and self.support[idx] == value:
            return float(self.probabilities[idx])
        return 0.0

    @classmethod
    def bernoulli(cls, p: float) -> "DiscreteDistribution":
        """Indicator distribution: P[X=1] = p, P[X=0] = 1-p."""
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"Bernoulli p must be in [0,1], got {p}")
        return cls([0.0, 1.0], [1.0 - p, p])

    def __repr__(self) -> str:
        return f"DiscreteDistribution({self.support.size} points)"
