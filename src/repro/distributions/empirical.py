"""Sample-backed (empirical) distributions.

An :class:`EmpiricalDistribution` is the distribution of a finite multiset
of observed values.  It is the natural output of Monte-Carlo query
processing (the paper's first query-processing category, §III-B) and the
natural carrier of a raw observation sample: the sample *is* the
distribution, so no information is lost before accuracy analysis.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(Distribution):
    """Uniform distribution over a finite sequence of observed values."""

    __slots__ = ("values", "_sorted")

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise DistributionError("empirical distribution needs >= 1 value")
        if not np.all(np.isfinite(arr)):
            raise DistributionError("empirical values must be finite")
        self.values = arr
        self._sorted = np.sort(arr)

    @property
    def size(self) -> int:
        """Number of backing observations."""
        return int(self.values.size)

    def mean(self) -> float:
        return float(self.values.mean())

    def variance(self) -> float:
        # Population variance of the multiset (ddof=0): this object *is*
        # the distribution, not an estimate of some other one.
        return float(self.values.var(ddof=0))

    def sample_variance(self) -> float:
        """Unbiased (ddof=1) variance — the ``s^2`` statistic of the sample."""
        if self.size < 2:
            return 0.0
        return float(self.values.var(ddof=1))

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return rng.choice(self.values, size=size, replace=True)

    def cdf(self, x: float) -> float:
        return float(np.searchsorted(self._sorted, x, side="right")) / self.size

    def quantile(self, q: float) -> float:
        """Empirical quantile (linear interpolation between order stats)."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0,1], got {q}")
        return float(np.quantile(self._sorted, q))

    def resample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> "EmpiricalDistribution":
        """A bootstrap resample (with replacement) of the backing values."""
        n = self.size if size is None else size
        return EmpiricalDistribution(self.sample(rng, n))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution(n={self.size}, mean={self.mean():.4g}, "
            f"std={self.std():.4g})"
        )
