"""Finite mixtures of distributions.

Gaussian mixture models are one of the representations prior uncertain
stream systems (PODS [19]) operate on directly; we support general finite
mixtures so query processing in the "direct on distributions" category can
produce them (e.g. the result of a probabilistic CASE/union).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.errors import DistributionError

__all__ = ["MixtureDistribution"]


class MixtureDistribution(Distribution):
    """Weighted mixture sum_i w_i * component_i."""

    __slots__ = ("components", "weights")

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise DistributionError("mixture needs >= 1 component")
        comps = tuple(components)
        if weights is None:
            w = np.full(len(comps), 1.0 / len(comps))
        else:
            w = np.asarray(weights, dtype=float).ravel()
            if w.size != len(comps):
                raise DistributionError(
                    f"{len(comps)} components but {w.size} weights"
                )
            if np.any(w < 0):
                raise DistributionError("mixture weights must be >= 0")
            total = w.sum()
            if total <= 0:
                raise DistributionError("mixture weights must not all be 0")
            w = w / total
        self.components = comps
        self.weights = w

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    def variance(self) -> float:
        # Law of total variance: E[Var] + Var[E].
        mu = self.mean()
        expected_var = sum(
            w * c.variance() for w, c in zip(self.weights, self.components)
        )
        var_of_means = sum(
            w * (c.mean() - mu) ** 2
            for w, c in zip(self.weights, self.components)
        )
        return float(expected_var + var_of_means)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        picks = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=float)
        for idx in np.unique(picks):
            mask = picks == idx
            out[mask] = self.components[idx].sample(rng, int(mask.sum()))
        return out

    def cdf(self, x: float) -> float:
        return float(
            sum(w * c.cdf(x) for w, c in zip(self.weights, self.components))
        )

    def __repr__(self) -> str:
        return f"MixtureDistribution({len(self.components)} components)"
