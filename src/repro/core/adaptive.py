"""Adaptive early-stopping bootstrap — distribution-sensitive draw budgets.

BOOTSTRAP-ACCURACY-INFO (§III) pays a fixed Monte-Carlo budget
``m = r * n`` regardless of how tight the percentile intervals already
are.  Following the distribution-sensitive adaptive-sampling idea of
Macke et al. (*Rapid Approximate Aggregation with Distribution-Sensitive
Interval Guarantees*), this module grows the number of de-facto
resamples incrementally — ``r0`` chunks first, then geometric escalation
— and terminates as soon as the requested interval width is reached.

Determinism contract
--------------------
The escalation *schedule* (:func:`resample_schedule`) is a pure function
of ``(r0, growth, r_max)``; the values drawn in round ``k`` are a pure
function of the seed and the schedule position, never of the worker
count (rounds delegate to the chunk-seeded drivers of
``repro.parallel.montecarlo``).  Because the stopping decision is a pure
function of the drawn values, a fixed seed reproduces the same rounds,
draws, and intervals at any worker count.

Incremental statistics
----------------------
Chunk statistics (per-resample mean, unbiased variance, bin heights) are
computed once per chunk when its round arrives and appended — escalation
never recomputes statistics for chunks drawn in earlier rounds.  Only
the percentile pass (over the ``r`` accumulated statistics, not the
``r * n`` values) reruns per round, which is negligible next to drawing.

Small-``r`` width calibration
-----------------------------
The raw percentile interval of ``r`` chunk statistics is biased narrow
for small ``r`` (the empirical 5th/95th percentiles of few points cannot
reach the tails), so stopping on the raw width would systematically
undercover.  :func:`width_calibration` supplies the expected shrinkage
factor of the interpolated percentile interval under a Gaussian
reference (Blom-approximated expected normal order statistics); the
stopping rule compares ``width * calibration`` against the target, which
makes the adaptive path terminate at the round whose *expected* width
matches the target instead of on a transiently-narrow estimate.
"""

from __future__ import annotations

import functools
import math
from collections.abc import Callable, Sequence

import numpy as np
from scipy.special import ndtri

from repro.core.accuracy import AccuracyInfo, BinInterval, ConfidenceInterval
from repro.core.bootstrap import (
    _basic_interval,
    _height_bins,
    _resample_statistics,
    percentile_interval,
)
from repro.errors import AccuracyError

__all__ = [
    "DEFAULT_INITIAL_RESAMPLES",
    "DEFAULT_GROWTH",
    "resample_schedule",
    "width_calibration",
    "IncrementalBootstrap",
    "adaptive_bootstrap_accuracy_info",
    "adaptive_bootstrap_from_values",
]

#: Resamples drawn before the first width check.
DEFAULT_INITIAL_RESAMPLES = 8
#: Geometric escalation factor between rounds.
DEFAULT_GROWTH = 2.0


def resample_schedule(
    r0: int = DEFAULT_INITIAL_RESAMPLES,
    growth: float = DEFAULT_GROWTH,
    r_max: int = 100,
) -> tuple[int, ...]:
    """Cumulative resample counts per escalation round.

    A pure function of ``(r0, growth, r_max)`` — the determinism
    contract requires the schedule to be independent of the data and of
    the worker count.  The last entry always equals ``r_max`` (the fixed
    budget the adaptive path never exceeds).
    """
    if r0 < 2:
        raise AccuracyError(f"initial resamples must be >= 2, got {r0}")
    if growth <= 1.0:
        raise AccuracyError(f"growth factor must be > 1, got {growth}")
    if r_max < 2:
        raise AccuracyError(f"max resamples must be >= 2, got {r_max}")
    if r_max <= r0:
        return (r_max,)
    schedule = [r0]
    while schedule[-1] < r_max:
        nxt = min(r_max, max(schedule[-1] + 1, math.ceil(schedule[-1] * growth)))
        schedule.append(nxt)
    return tuple(schedule)


def _blom_normal_order_stat(index: int, r: int) -> float:
    """Blom approximation of E[X_(index+1:r)] for standard normal X."""
    return float(ndtri((index + 1 - 0.375) / (r + 0.25)))


@functools.lru_cache(maxsize=4096)
def width_calibration(r: int, confidence: float) -> float:
    """Expected small-``r`` shrinkage correction for percentile widths.

    Ratio of the asymptotic ``(1±confidence)/2`` normal interval width to
    the expected width of the linearly-interpolated percentile interval
    over ``r`` iid Gaussian statistics.  Always >= 1; approaches 1 as
    ``r`` grows.  The Gaussian reference is exact for mean statistics of
    Gaussian chunks and a documented approximation otherwise.
    """
    if r < 2:
        raise AccuracyError(f"calibration needs r >= 2, got {r}")
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )

    def expected_quantile(q: float) -> float:
        position = q * (r - 1)
        below = int(position)
        above = min(below + 1, r - 1)
        fraction = position - below
        base = _blom_normal_order_stat(below, r)
        return base + fraction * (_blom_normal_order_stat(above, r) - base)

    q_low = (1.0 - confidence) / 2.0
    q_high = (1.0 + confidence) / 2.0
    expected_width = expected_quantile(q_high) - expected_quantile(q_low)
    asymptotic_width = float(ndtri(q_high) - ndtri(q_low))
    if expected_width <= 0.0:
        return 1.0
    return max(1.0, asymptotic_width / expected_width)


class IncrementalBootstrap:
    """Chunk-statistics accumulator behind the adaptive bootstrap.

    Feed Monte-Carlo values in blocks whose length is a multiple of the
    d.f. sample size ``n`` (one block per escalation round); each block's
    chunk statistics are computed once and appended.  ``satisfied()``
    evaluates the width-target stopping rule over the statistics
    accumulated so far; ``result()`` assembles the final
    :class:`AccuracyInfo` without revisiting any values.
    """

    def __init__(
        self,
        n: int,
        confidence: float = 0.95,
        edges: Sequence[float] | None = None,
        interval: str = "percentile",
        target_ci_width: float | None = None,
        target_relative_width: float | None = None,
        calibrate: bool = True,
    ) -> None:
        if n < 1:
            raise AccuracyError(f"d.f. sample size must be >= 1, got {n}")
        if interval not in ("percentile", "basic"):
            raise AccuracyError(
                f"interval must be 'percentile' or 'basic', got {interval!r}"
            )
        if not 0.0 < confidence < 1.0:
            raise AccuracyError(
                f"confidence level must be in (0,1), got {confidence}"
            )
        for name, target in (
            ("target_ci_width", target_ci_width),
            ("target_relative_width", target_relative_width),
        ):
            if target is not None and not target > 0.0:
                raise AccuracyError(f"{name} must be > 0, got {target}")
        self.n = n
        self.confidence = confidence
        self.interval = interval
        self.target_ci_width = target_ci_width
        self.target_relative_width = target_relative_width
        self.calibrate = calibrate
        self._edges = None if edges is None else np.asarray(edges, dtype=float)
        self._means: list[np.ndarray] = []
        self._variances: list[np.ndarray] = []
        self._heights: list[np.ndarray] = []
        # Raw blocks are only retained for the basic interval, whose
        # reflection point must match the one-shot kernel's two-pass
        # moments exactly; the percentile path never revisits values.
        self._blocks: list[np.ndarray] | None = (
            [] if interval == "basic" else None
        )
        self._draws = 0
        self._rounds = 0

    @property
    def resamples(self) -> int:
        """Number of de-facto resamples (chunks) accumulated so far."""
        return self._draws // self.n

    @property
    def draws_used(self) -> int:
        return self._draws

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def adaptive(self) -> bool:
        """Whether any width target gates termination."""
        return (
            self.target_ci_width is not None
            or self.target_relative_width is not None
        )

    def add_values(self, values: np.ndarray) -> None:
        """Fold one round's values in; length must be a multiple of n."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0 or arr.size % self.n:
            raise AccuracyError(
                f"adaptive rounds must supply a positive multiple of "
                f"n={self.n} values, got {arr.size}"
            )
        chunks = arr.reshape(-1, self.n)
        means, variances, heights = _resample_statistics(chunks, self._edges)
        self._means.append(means)
        self._variances.append(variances)
        if heights is not None:
            self._heights.append(heights)
        if self._blocks is not None:
            self._blocks.append(arr)
        self._draws += arr.size
        self._rounds += 1

    # -- stopping rule ----------------------------------------------------

    def _current_intervals(
        self,
    ) -> tuple[ConfidenceInterval, ConfidenceInterval]:
        means = np.concatenate(self._means)
        variances = np.concatenate(self._variances)
        return (
            percentile_interval(means, self.confidence),
            percentile_interval(variances, self.confidence),
        )

    def _width_ok(
        self, ci: ConfidenceInterval, absolute: float | None
    ) -> bool:
        factor = (
            width_calibration(self.resamples, self.confidence)
            if self.calibrate
            else 1.0
        )
        width = ci.length * factor
        if absolute is not None and width > absolute:
            return False
        relative = self.target_relative_width
        if relative is not None:
            scale = abs(ci.midpoint)
            if scale <= 0.0 or width > relative * scale:
                return False
        return True

    def satisfied(self) -> bool:
        """Whether the accumulated intervals meet the width targets.

        The absolute ``target_ci_width`` gates the mean interval (widths
        of different statistics are not commensurable — the variance
        interval lives in squared units); ``target_relative_width``
        gates both the mean and variance intervals relative to their
        midpoints.  Always ``False`` when no target is set or fewer than
        two resamples have arrived.
        """
        if not self.adaptive or self.resamples < 2:
            return False
        mean_ci, var_ci = self._current_intervals()
        if not self._width_ok(mean_ci, self.target_ci_width):
            return False
        if self.target_relative_width is not None and not self._width_ok(
            var_ci, None
        ):
            return False
        return True

    # -- result assembly --------------------------------------------------

    def result(self) -> AccuracyInfo:
        """The accuracy record over every chunk accumulated so far."""
        if self.resamples < 2:
            raise AccuracyError(
                f"need at least 2 resamples; accumulated "
                f"{self.resamples} chunks of n={self.n}"
            )
        mean_ci, var_ci = self._current_intervals()
        if self.interval == "basic":
            assert self._blocks is not None
            used = (
                self._blocks[0]
                if len(self._blocks) == 1
                else np.concatenate(self._blocks)
            )
            point_mean = float(used.mean())
            point_var = (
                max(float(used.var(ddof=1)), 0.0) if used.size > 1 else 0.0
            )
            mean_ci = _basic_interval(mean_ci, point_mean)
            var_ci = _basic_interval(var_ci, point_var)
            var_ci = ConfidenceInterval(
                max(var_ci.low, 0.0), max(var_ci.high, 0.0), self.confidence
            )
        bins: tuple[BinInterval, ...] = ()
        if self._heights:
            heights = np.concatenate(self._heights, axis=0)
            assert self._edges is not None
            bins = _height_bins(heights, self._edges, self.confidence)
        return AccuracyInfo(
            mean=mean_ci,
            variance=var_ci,
            bins=bins,
            sample_size=self.n,
            method="bootstrap",
            values_used=self._draws,
            values_dropped=0,
            draws_used=self._draws,
            rounds=self._rounds,
        )


def adaptive_bootstrap_accuracy_info(
    draw: Callable[[int], np.ndarray],
    n: int,
    confidence: float = 0.95,
    *,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
    max_resamples: int = 100,
    initial_resamples: int = DEFAULT_INITIAL_RESAMPLES,
    growth: float = DEFAULT_GROWTH,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
    calibrate: bool = True,
) -> AccuracyInfo:
    """BOOTSTRAP-ACCURACY-INFO with an adaptive early-stopping budget.

    ``draw(count)`` supplies ``count`` fresh Monte-Carlo values of the
    output random variable; it is called once per escalation round with
    a count that is always a multiple of ``n``.  With no width target
    the full ``max_resamples`` schedule runs — a fixed-budget bootstrap
    drawn through the same incremental engine, byte-identical to the
    adaptive path given the same total draws.
    """
    state = IncrementalBootstrap(
        n,
        confidence,
        edges=edges,
        interval=interval,
        target_ci_width=target_ci_width,
        target_relative_width=target_relative_width,
        calibrate=calibrate,
    )
    for r_total in resample_schedule(initial_resamples, growth, max_resamples):
        delta = (r_total - state.resamples) * n
        if delta <= 0:
            continue
        values = np.asarray(draw(delta), dtype=float).ravel()
        if values.size != delta:
            raise AccuracyError(
                f"draw callable returned {values.size} values, "
                f"expected {delta}"
            )
        state.add_values(values)
        if state.satisfied():
            break
    return state.result()


def adaptive_bootstrap_from_values(
    values: Sequence[float] | np.ndarray,
    n: int,
    confidence: float = 0.95,
    *,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
    initial_resamples: int = DEFAULT_INITIAL_RESAMPLES,
    growth: float = DEFAULT_GROWTH,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
    calibrate: bool = True,
) -> AccuracyInfo:
    """Adaptive early stopping over an existing Monte-Carlo sequence.

    Consumes a prefix of ``values`` round by round (in production order,
    exactly as line 4 of the paper's listing reads them) and stops as
    soon as the width target is met; ``draws_used`` reports how much of
    the sequence was actually consumed.  The budget is the longest
    chunk-aligned prefix, ``r_max = len(values) // n``.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if n < 1:
        raise AccuracyError(f"d.f. sample size must be >= 1, got {n}")
    r_max = arr.size // n
    if r_max < 2:
        raise AccuracyError(
            f"need at least 2 resamples; got m={arr.size} values for n={n} "
            f"(m must be >= 2n — callers drawing Monte-Carlo values must "
            f"request mc_samples >= 2n)"
        )
    cursor = 0

    def draw(count: int) -> np.ndarray:
        nonlocal cursor
        block = arr[cursor : cursor + count]
        cursor += count
        return block

    return adaptive_bootstrap_accuracy_info(
        draw,
        n,
        confidence,
        target_ci_width=target_ci_width,
        target_relative_width=target_relative_width,
        max_resamples=r_max,
        initial_resamples=initial_resamples,
        growth=growth,
        edges=edges,
        interval=interval,
        calibrate=calibrate,
    )
