"""Basic significance predicates — mTest, mdTest, pTest (paper §IV-B).

Each predicate wraps a classical hypothesis test:

* ``mTest(X, op, c, alpha)`` — population-mean test, H0: E(X) = c versus
  H1: E(X) op c, via the one-sample t statistic (z for large samples,
  consistent with Lemma 2's cutoff).
* ``mdTest(X, Y, op, c, alpha)`` — mean-difference test, H0: E(X) − E(Y) = c,
  via the two-sample Welch t statistic.
* ``pTest(pred, tau, alpha)`` — population-proportion test,
  H0: Pr[pred] = tau versus H1: Pr[pred] op tau, via the one-proportion
  z statistic.

A predicate "returns TRUE" when the null hypothesis is rejected at
significance level alpha, which bounds the false-positive rate by alpha.
Predicates are immutable and support ``replaced(op=..., alpha=...)`` so the
COUPLED-TESTS algorithm (:mod:`repro.core.coupled`) can build the inverse
test exactly as in the paper's listing.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import math
from collections.abc import Sequence
from typing import NamedTuple

import numpy as np
from scipy import special

from repro.core.analytic import SMALL_SAMPLE_MEAN_CUTOFF, _chi2_upper
from repro.core.dfsample import DfSized
from repro.distributions.base import Distribution
from repro.errors import AccuracyError, QueryError

__all__ = [
    "OPS",
    "INVERSE_OP",
    "FieldStats",
    "TestResult",
    "m_test",
    "md_test",
    "p_test",
    "v_test",
    "SignificancePredicate",
    "MTest",
    "MdTest",
    "PTest",
    "VTest",
]

OPS = ("<", ">", "<>")
INVERSE_OP = {"<": ">", ">": "<"}


def _check_op(op: str, allow_two_sided: bool = True) -> str:
    if op not in OPS or (op == "<>" and not allow_two_sided):
        raise QueryError(f"unsupported test operator {op!r}")
    return op


def _check_alpha(alpha: float) -> float:
    if not 0.0 < alpha < 1.0:
        raise AccuracyError(f"significance level must be in (0,1), got {alpha}")
    return alpha


class TestResult(NamedTuple):
    """Outcome of one hypothesis test.

    ``reject`` is True when H0 is rejected (the predicate holds);
    ``statistic`` is the test statistic; ``p_value`` the attained
    significance.  Truthiness follows ``reject`` so predicates compose
    naturally in boolean contexts.
    """

    reject: bool
    statistic: float
    p_value: float

    def __bool__(self) -> bool:
        return self.reject


@dataclasses.dataclass(frozen=True, slots=True)
class FieldStats:
    """Summary statistics of a probabilistic field: (mean, std, n).

    This is all the significance tests need; the helpers below build one
    from a raw sample, a distribution with a known (de facto) sample size,
    or a :class:`DfSized` value.
    """

    mean: float
    std: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise AccuracyError(f"sample size must be >= 1, got {self.n}")
        if self.std < 0:
            raise AccuracyError(f"std must be >= 0, got {self.std}")

    @classmethod
    def from_sample(cls, values: Sequence[float] | np.ndarray) -> "FieldStats":
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size < 2:
            raise AccuracyError("need >= 2 observations for field statistics")
        return cls(float(arr.mean()), float(arr.std(ddof=1)), int(arr.size))

    @classmethod
    def from_distribution(cls, dist: Distribution, n: int) -> "FieldStats":
        return cls(dist.mean(), dist.std(), n)

    @classmethod
    def from_dfsized(cls, value: DfSized) -> "FieldStats":
        if value.sample_size is None:
            raise AccuracyError(
                "cannot run a significance test on an exact value: "
                "no sampling uncertainty to test against"
            )
        return cls.from_distribution(value.distribution, value.sample_size)


@functools.lru_cache(maxsize=4096)
def _critical_value(alpha: float, df: float | None) -> float:
    """Upper-alpha critical value of the t (given df) or normal reference."""
    if df is not None:
        return float(special.stdtrit(df, 1.0 - alpha))
    return float(special.ndtri(1.0 - alpha))


def _survival(statistic: float, df: float | None) -> float:
    """P[T > statistic] under the t (given df) or normal reference.

    Uses scipy.special directly — the stats.t/norm front-ends cost two
    orders of magnitude more per call, which matters at stream rates.
    """
    if math.isinf(statistic):
        return 0.0 if statistic > 0 else 1.0
    if df is not None:
        return 1.0 - float(special.stdtr(df, statistic))
    return float(special.ndtr(-statistic))


def _one_sided_decision(
    statistic: float, op: str, alpha: float, df: float | None
) -> TestResult:
    """Shared rejection logic for t/z statistics over '<', '>', '<>'."""
    if op == ">":
        p_value = _survival(statistic, df)
        reject = statistic > _critical_value(alpha, df)
    elif op == "<":
        p_value = _survival(-statistic, df)
        reject = statistic < -_critical_value(alpha, df)
    else:  # '<>'
        p_value = 2.0 * _survival(abs(statistic), df)
        reject = abs(statistic) > _critical_value(alpha / 2.0, df)
    return TestResult(bool(reject), float(statistic), min(p_value, 1.0))


def m_test(
    field: FieldStats, op: str, c: float, alpha: float = 0.05
) -> TestResult:
    """mTest: is E(X) op c statistically significant at level alpha?

    One-sample mean test.  Uses the Student-t reference distribution for
    n below the small-sample cutoff and the normal otherwise, mirroring
    Lemma 2's regime split.
    """
    _check_op(op)
    _check_alpha(alpha)
    scale = field.std / math.sqrt(field.n)
    if scale == 0.0:
        # Degenerate (or subnormal-underflow) spread: the statistic is
        # +/- infinity, or 0 at exact equality.
        diff = field.mean - c
        statistic = math.inf * np.sign(diff) if diff != 0 else 0.0
    else:
        statistic = (field.mean - c) / scale
    df = field.n - 1 if field.n < SMALL_SAMPLE_MEAN_CUTOFF else None
    if df is not None and df < 1:
        raise AccuracyError("mTest needs a sample of size >= 2")
    return _one_sided_decision(statistic, op, alpha, df)


def md_test(
    field_x: FieldStats,
    field_y: FieldStats,
    op: str,
    c: float = 0.0,
    alpha: float = 0.05,
) -> TestResult:
    """mdTest: is E(X) − E(Y) op c statistically significant?

    Two-sample mean-difference test with the Welch statistic and
    Welch–Satterthwaite degrees of freedom (robust to unequal variances;
    the textbook the paper follows uses the same statistic with a pooled
    df in the equal-variance case).
    """
    _check_op(op)
    _check_alpha(alpha)
    var_term = (
        field_x.std**2 / field_x.n + field_y.std**2 / field_y.n
    )
    diff = field_x.mean - field_y.mean - c
    if var_term == 0.0:
        statistic = math.inf * np.sign(diff) if diff != 0 else 0.0
        df: float | None = None
    else:
        statistic = diff / math.sqrt(var_term)
        numerator = var_term**2
        denom = 0.0
        if field_x.n > 1:
            denom += (field_x.std**2 / field_x.n) ** 2 / (field_x.n - 1)
        if field_y.n > 1:
            denom += (field_y.std**2 / field_y.n) ** 2 / (field_y.n - 1)
        if denom == 0.0:
            raise AccuracyError("mdTest needs samples of size >= 2")
        # Always use the Welch t reference: unlike the one-sample case
        # there is no textbook cutoff, and the t converges to the normal
        # anyway as df grows.
        df = numerator / denom
    return _one_sided_decision(statistic, op, alpha, df)


def p_test(
    p_hat: float,
    n: int,
    op: str,
    tau: float,
    alpha: float = 0.05,
) -> TestResult:
    """pTest: is Pr[pred] op tau statistically significant?

    One-proportion z test on the estimated probability ``p_hat`` of the
    predicate being true, computed from a (de facto) sample of size n.
    H0: Pr[pred] = tau.  The paper defines H1 with '>' as the common case;
    '<' and '<>' are supported for coupling.
    """
    _check_op(op)
    _check_alpha(alpha)
    if not 0.0 <= p_hat <= 1.0:
        raise AccuracyError(f"estimated probability must be in [0,1]: {p_hat}")
    if not 0.0 < tau < 1.0:
        raise AccuracyError(f"threshold tau must be in (0,1), got {tau}")
    if n < 1:
        raise AccuracyError(f"sample size must be >= 1, got {n}")
    scale = math.sqrt(tau * (1.0 - tau) / n)
    statistic = (p_hat - tau) / scale
    return _one_sided_decision(statistic, op, alpha, None)


class SignificancePredicate(abc.ABC):
    """A bound significance predicate: data + test parameters, immutable.

    ``run()`` performs the hypothesis test; TRUE (reject H0) bounds the
    false-positive rate by ``alpha``.  ``replaced()`` derives a copy with a
    different op / alpha, which is how COUPLED-TESTS builds the inverse
    test (lines 2-11 of the paper's listing).
    """

    op: str
    alpha: float

    @abc.abstractmethod
    def run(self) -> TestResult:
        """Execute the test; truthy result means the predicate holds."""

    @abc.abstractmethod
    def replaced(
        self, op: str | None = None, alpha: float | None = None
    ) -> "SignificancePredicate":
        """A copy with the given fields overridden."""

    def inverse(self) -> "SignificancePredicate":
        """The coupled inverse test ('>' <-> '<')."""
        if self.op not in INVERSE_OP:
            raise QueryError(
                f"operator {self.op!r} has no single inverse; "
                "COUPLED-TESTS splits '<>' into two one-sided tests instead"
            )
        return self.replaced(op=INVERSE_OP[self.op])


@dataclasses.dataclass(frozen=True, slots=True)
class MTest(SignificancePredicate):
    """Bound mTest(X, op, c, alpha)."""

    field: FieldStats
    op: str
    c: float
    alpha: float = 0.05

    def run(self) -> TestResult:
        return m_test(self.field, self.op, self.c, self.alpha)

    def replaced(
        self, op: str | None = None, alpha: float | None = None
    ) -> "MTest":
        return MTest(
            self.field,
            self.op if op is None else op,
            self.c,
            self.alpha if alpha is None else alpha,
        )


@dataclasses.dataclass(frozen=True, slots=True)
class MdTest(SignificancePredicate):
    """Bound mdTest(X, Y, op, c, alpha)."""

    field_x: FieldStats
    field_y: FieldStats
    op: str
    c: float = 0.0
    alpha: float = 0.05

    def run(self) -> TestResult:
        return md_test(self.field_x, self.field_y, self.op, self.c, self.alpha)

    def replaced(
        self, op: str | None = None, alpha: float | None = None
    ) -> "MdTest":
        return MdTest(
            self.field_x,
            self.field_y,
            self.op if op is None else op,
            self.c,
            self.alpha if alpha is None else alpha,
        )


@dataclasses.dataclass(frozen=True, slots=True)
class PTest(SignificancePredicate):
    """Bound pTest(pred, tau, alpha) over an estimated probability."""

    p_hat: float
    n: int
    tau: float
    op: str = ">"
    alpha: float = 0.05

    def run(self) -> TestResult:
        return p_test(self.p_hat, self.n, self.op, self.tau, self.alpha)

    def replaced(
        self, op: str | None = None, alpha: float | None = None
    ) -> "PTest":
        return PTest(
            self.p_hat,
            self.n,
            self.tau,
            self.op if op is None else op,
            self.alpha if alpha is None else alpha,
        )


def v_test(
    field: FieldStats, op: str, c: float, alpha: float = 0.05
) -> TestResult:
    """vTest: is Var(X) op c statistically significant? (extension)

    A chi-square variance test — a natural fourth significance predicate
    beyond the paper's three, mirroring Lemma 2's variance interval:
    under H0: Var(X) = c, the statistic (n-1) * s^2 / c follows a
    chi-square distribution with n-1 degrees of freedom.
    """
    _check_op(op)
    _check_alpha(alpha)
    if c <= 0:
        raise AccuracyError(f"variance under test must be > 0, got {c}")
    if field.n < 2:
        raise AccuracyError("vTest needs a sample of size >= 2")
    df = field.n - 1
    statistic = df * field.std**2 / c

    def chi2_upper(tail: float) -> float:
        # Memoized in repro.core.analytic: the stream path runs this
        # test per tuple with a constant (alpha, df), so the critical
        # values are cache hits, not chi-square solves.
        return _chi2_upper(tail, df)

    sf = float(special.chdtrc(df, statistic))  # P[chi2 > statistic]
    if op == ">":
        p_value = sf
        reject = statistic > chi2_upper(alpha)
    elif op == "<":
        p_value = 1.0 - sf
        reject = statistic < chi2_upper(1.0 - alpha)
    else:  # '<>'
        p_value = 2.0 * min(sf, 1.0 - sf)
        reject = (
            statistic > chi2_upper(alpha / 2.0)
            or statistic < chi2_upper(1.0 - alpha / 2.0)
        )
    return TestResult(bool(reject), float(statistic), min(p_value, 1.0))


@dataclasses.dataclass(frozen=True, slots=True)
class VTest(SignificancePredicate):
    """Bound vTest(X, op, c, alpha) — the variance-test extension."""

    field: FieldStats
    op: str
    c: float
    alpha: float = 0.05

    def run(self) -> TestResult:
        return v_test(self.field, self.op, self.c, self.alpha)

    def replaced(
        self, op: str | None = None, alpha: float | None = None
    ) -> "VTest":
        return VTest(
            self.field,
            self.op if op is None else op,
            self.c,
            self.alpha if alpha is None else alpha,
        )
