"""Bootstrap accuracy methods — algorithm BOOTSTRAP-ACCURACY-INFO (§III).

The algorithm consumes the sequence of values of an output random variable
(produced by Monte-Carlo query processing, or sampled from a closed-form
result distribution), chops it into ``r = floor(m / n)`` de-facto
resamples of size ``n`` (the d.f. sample size of the output, Lemma 3),
computes each statistic once per resample, and reports the percentile
interval of each statistic across the resamples.

Theorem 2 argues correctness: the chunks are resamples of the ``c`` d.f.
samples counted by Lemma 4, so this is a concurrent bootstrap whose mixture
distribution yields valid percentile intervals.

For the ablation study we also provide the classical single-sample
with-replacement bootstrap (:func:`classical_bootstrap_accuracy`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo, BinInterval, ConfidenceInterval
from repro.errors import AccuracyError

__all__ = [
    "percentile_interval",
    "bootstrap_accuracy_info",
    "classical_bootstrap_accuracy",
]


def _sorted_percentile(sorted_values: np.ndarray, q: float) -> float:
    """Linear-interpolation percentile of an already-sorted 1-D array.

    Matches numpy's default 'linear' method, without the per-call
    dispatch overhead that dominates at stream rates.
    """
    position = q * (sorted_values.size - 1)
    below = int(position)
    above = min(below + 1, sorted_values.size - 1)
    fraction = position - below
    return float(
        sorted_values[below] * (1.0 - fraction)
        + sorted_values[above] * fraction
    )


def percentile_interval(
    statistic_values: np.ndarray, confidence: float
) -> ConfidenceInterval:
    """The alpha percentile interval over a statistic's bootstrap values.

    Lines 12-15 of the algorithm: the interval between the
    ``100*(1-alpha)/2`` and ``100*(1+alpha)/2`` percentiles.
    """
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )
    arr = np.asarray(statistic_values, dtype=float).ravel()
    if arr.size == 0:
        raise AccuracyError("cannot take percentiles of an empty sequence")
    arr = np.sort(arr)
    low = _sorted_percentile(arr, (1.0 - confidence) / 2.0)
    high = _sorted_percentile(arr, (1.0 + confidence) / 2.0)
    return ConfidenceInterval(low, high, confidence)


def _resample_statistics(
    chunks: np.ndarray, edges: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Per-resample (mean, variance, bin-height) statistics.

    ``chunks`` has shape (r, n); returns means (r,), variances (r,) and,
    when ``edges`` is given, bin heights with shape (r, b).
    """
    r, n = chunks.shape
    # One matmul per statistic beats the axis-reduction front-ends on the
    # small (r, n) chunk matrices this algorithm works with.
    weights = np.full(n, 1.0 / n)
    means = chunks @ weights
    if n > 1:
        second_moments = (chunks * chunks) @ weights
        variances = (second_moments - means * means) * (n / (n - 1.0))
        np.clip(variances, 0.0, None, out=variances)
    else:
        variances = np.zeros(r)
    heights = None
    if edges is not None:
        b = len(edges) - 1
        heights = np.empty((r, b))
        for i in range(r):
            counts, _ = np.histogram(chunks[i], bins=edges)
            heights[i] = counts / n
    return means, variances, heights


def _basic_interval(
    percentile_ci: ConfidenceInterval, point_estimate: float
) -> ConfidenceInterval:
    """The 'basic' (reflected) bootstrap interval 2*theta - [q_hi, q_lo].

    Reflecting the percentile interval around the full-sequence point
    estimate corrects first-order bootstrap bias; offered as an
    alternative to the paper's plain percentile interval for the
    ablation study.
    """
    return ConfidenceInterval(
        2.0 * point_estimate - percentile_ci.high,
        2.0 * point_estimate - percentile_ci.low,
        percentile_ci.confidence,
    )


def bootstrap_accuracy_info(
    values: Sequence[float] | np.ndarray,
    n: int,
    confidence: float = 0.95,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
) -> AccuracyInfo:
    """Algorithm BOOTSTRAP-ACCURACY-INFO(v[.], n, alpha).

    Parameters
    ----------
    values:
        The ``m`` values of the output random variable Y, in production
        order (line 4 reads them chunk by chunk).
    n:
        The d.f. sample size of Y (Lemma 3).
    confidence:
        The interval confidence level alpha.
    edges:
        Optional histogram bucket edges; when given, per-bin height
        intervals are produced too (lines 6-8, 12-14).
    interval:
        ``"percentile"`` — the paper's percentile interval (default);
        ``"basic"`` — the reflected/basic bootstrap interval for the
        mean and variance (bin heights always use percentiles).
    """
    if interval not in ("percentile", "basic"):
        raise AccuracyError(
            f"interval must be 'percentile' or 'basic', got {interval!r}"
        )
    arr = np.asarray(values, dtype=float).ravel()
    if n < 1:
        raise AccuracyError(f"d.f. sample size must be >= 1, got {n}")
    r = arr.size // n
    if r < 2:
        raise AccuracyError(
            f"need at least 2 resamples; got m={arr.size} values for n={n} "
            f"(m must be >= 2n)"
        )
    chunks = arr[: r * n].reshape(r, n)
    edges_arr = None if edges is None else np.asarray(edges, dtype=float)
    means, variances, heights = _resample_statistics(chunks, edges_arr)

    mean_ci = percentile_interval(means, confidence)
    var_ci = percentile_interval(variances, confidence)
    if interval == "basic":
        used = arr[: r * n]
        mean_ci = _basic_interval(mean_ci, float(used.mean()))
        var_point = float(used.var(ddof=1)) if used.size > 1 else 0.0
        var_ci = _basic_interval(var_ci, var_point)
        var_ci = ConfidenceInterval(
            max(var_ci.low, 0.0), max(var_ci.high, 0.0), confidence
        )
    bins: tuple[BinInterval, ...] = ()
    if heights is not None:
        assert edges_arr is not None
        bin_list = []
        for k in range(heights.shape[1]):
            ci = percentile_interval(heights[:, k], confidence)
            bin_list.append(
                BinInterval(
                    float(edges_arr[k]), float(edges_arr[k + 1]),
                    ci.clamped(0.0, 1.0),
                )
            )
        bins = tuple(bin_list)
    return AccuracyInfo(
        mean=mean_ci,
        variance=var_ci,
        bins=bins,
        sample_size=n,
        method="bootstrap",
    )


def classical_bootstrap_accuracy(
    sample: Sequence[float] | np.ndarray,
    rng: np.random.Generator,
    confidence: float = 0.95,
    n_resamples: int = 200,
    edges: Sequence[float] | None = None,
) -> AccuracyInfo:
    """Classical with-replacement bootstrap from one sample (ablation).

    Unlike the paper's chunked algorithm, this resamples the *original*
    sample with replacement ``n_resamples`` times; used by the ablation
    bench to compare the two bootstrap designs.
    """
    arr = np.asarray(sample, dtype=float).ravel()
    if arr.size < 2:
        raise AccuracyError("classical bootstrap needs a sample of size >= 2")
    if n_resamples < 2:
        raise AccuracyError("need at least 2 resamples")
    n = arr.size
    idx = rng.integers(0, n, size=(n_resamples, n))
    chunks = arr[idx]
    edges_arr = None if edges is None else np.asarray(edges, dtype=float)
    means, variances, heights = _resample_statistics(chunks, edges_arr)

    mean_ci = percentile_interval(means, confidence)
    var_ci = percentile_interval(variances, confidence)
    bins: tuple[BinInterval, ...] = ()
    if heights is not None:
        assert edges_arr is not None
        bins = tuple(
            BinInterval(
                float(edges_arr[k]),
                float(edges_arr[k + 1]),
                percentile_interval(heights[:, k], confidence).clamped(0, 1),
            )
            for k in range(heights.shape[1])
        )
    return AccuracyInfo(
        mean=mean_ci,
        variance=var_ci,
        bins=bins,
        sample_size=n,
        method="bootstrap",
    )
