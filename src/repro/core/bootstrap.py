"""Bootstrap accuracy methods — algorithm BOOTSTRAP-ACCURACY-INFO (§III).

The algorithm consumes the sequence of values of an output random variable
(produced by Monte-Carlo query processing, or sampled from a closed-form
result distribution), chops it into ``r = floor(m / n)`` de-facto
resamples of size ``n`` (the d.f. sample size of the output, Lemma 3),
computes each statistic once per resample, and reports the percentile
interval of each statistic across the resamples.

Theorem 2 argues correctness: the chunks are resamples of the ``c`` d.f.
samples counted by Lemma 4, so this is a concurrent bootstrap whose mixture
distribution yields valid percentile intervals.

For the ablation study we also provide the classical single-sample
with-replacement bootstrap (:func:`classical_bootstrap_accuracy`).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo, BinInterval, ConfidenceInterval
from repro.errors import AccuracyError

__all__ = [
    "TRUNCATION_WARN_FRACTION",
    "percentile_interval",
    "percentile_intervals",
    "bootstrap_accuracy_info",
    "bootstrap_accuracy_batch",
    "classical_bootstrap_accuracy",
]

# bootstrap_accuracy_info warns when chunking drops more than this
# fraction of the Monte-Carlo values (m mod n can be almost n-1 values).
TRUNCATION_WARN_FRACTION = 0.25


def _sorted_percentile(sorted_values: np.ndarray, q: float) -> float:
    """Linear-interpolation percentile of an already-sorted 1-D array.

    Matches numpy's default 'linear' method, without the per-call
    dispatch overhead that dominates at stream rates.
    """
    position = q * (sorted_values.size - 1)
    below = int(position)
    above = min(below + 1, sorted_values.size - 1)
    fraction = position - below
    # Lerp as base + fraction*delta: exact when both endpoints are
    # equal, so constant sequences cannot produce inverted intervals.
    base = float(sorted_values[below])
    return base + fraction * (float(sorted_values[above]) - base)


def percentile_interval(
    statistic_values: np.ndarray, confidence: float
) -> ConfidenceInterval:
    """The alpha percentile interval over a statistic's bootstrap values.

    Lines 12-15 of the algorithm: the interval between the
    ``100*(1-alpha)/2`` and ``100*(1+alpha)/2`` percentiles.
    """
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )
    arr = np.asarray(statistic_values, dtype=float).ravel()
    if arr.size == 0:
        raise AccuracyError("cannot take percentiles of an empty sequence")
    arr = np.sort(arr)
    low = _sorted_percentile(arr, (1.0 - confidence) / 2.0)
    high = _sorted_percentile(arr, (1.0 + confidence) / 2.0)
    # low <= high mathematically; guard the last-ulp rounding cases.
    return ConfidenceInterval(min(low, high), high, confidence)


def _matrix_percentile(sorted_matrix: np.ndarray, q: float) -> np.ndarray:
    """Column-wise :func:`_sorted_percentile` of a matrix sorted on axis 0."""
    position = q * (sorted_matrix.shape[0] - 1)
    below = int(position)
    above = min(below + 1, sorted_matrix.shape[0] - 1)
    fraction = position - below
    # Same exact-when-equal lerp form as _sorted_percentile.
    base = sorted_matrix[below]
    return base + fraction * (sorted_matrix[above] - base)


def percentile_intervals(
    statistic_matrix: np.ndarray, confidence: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized percentile intervals over a ``(r, b)`` statistic matrix.

    Column ``k`` holds the ``r`` bootstrap values of statistic ``k``
    (e.g. the heights of histogram bin ``k`` across resamples); one sort
    along axis 0 replaces ``b`` scalar :func:`percentile_interval` calls.
    Returns ``(low, high)`` arrays of length ``b``.
    """
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )
    matrix = np.asarray(statistic_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise AccuracyError(
            "percentile_intervals needs a non-empty 2-D (r, b) matrix, got "
            f"shape {matrix.shape}"
        )
    matrix = np.sort(matrix, axis=0)
    low = _matrix_percentile(matrix, (1.0 - confidence) / 2.0)
    high = _matrix_percentile(matrix, (1.0 + confidence) / 2.0)
    # low <= high mathematically; guard the last-ulp rounding cases.
    return np.minimum(low, high), high


def _resample_statistics(
    chunks: np.ndarray, edges: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Per-resample (mean, variance, bin-height) statistics.

    ``chunks`` has shape (r, n); returns means (r,), variances (r,) and,
    when ``edges`` is given, bin heights with shape (r, b).
    """
    r, n = chunks.shape
    # Row-wise pairwise reductions, NOT a matmul: BLAS GEMV picks
    # row-count-dependent kernels, so per-row dot products can differ in
    # the last ulp between an (r, n) call and the same rows split across
    # calls.  The adaptive engine (per-round blocks) and the parallel
    # slab decomposition both rely on chunk statistics being a pure
    # function of the chunk row alone for bitwise reproducibility.
    means = chunks.mean(axis=1)
    if n > 1:
        second_moments = (chunks * chunks).mean(axis=1)
        variances = (second_moments - means * means) * (n / (n - 1.0))
        np.clip(variances, 0.0, None, out=variances)
    else:
        variances = np.zeros(r)
    heights = None
    if edges is not None:
        heights = _chunk_bin_heights(chunks, edges)
    return means, variances, heights


def _chunk_bin_heights(chunks: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin heights of every chunk row in one pass, shape ``(r, b)``.

    One ``searchsorted`` + ``bincount`` over the flattened ``(r, n)``
    matrix replaces the per-row ``np.histogram`` loop while keeping its
    semantics: bin ``k`` covers ``[edges[k], edges[k+1])``, the last bin
    is closed on the right, and out-of-range values are ignored.
    """
    r, n = chunks.shape
    b = edges.size - 1
    flat = chunks.ravel()
    idx = np.searchsorted(edges, flat, side="right") - 1
    idx[flat == edges[-1]] = b - 1
    valid = (idx >= 0) & (idx < b)
    rows = np.repeat(np.arange(r), n)
    counts = np.bincount(
        rows[valid] * b + idx[valid], minlength=r * b
    ).reshape(r, b)
    return counts / n


def _basic_interval(
    percentile_ci: ConfidenceInterval, point_estimate: float
) -> ConfidenceInterval:
    """The 'basic' (reflected) bootstrap interval 2*theta - [q_hi, q_lo].

    Reflecting the percentile interval around the full-sequence point
    estimate corrects first-order bootstrap bias; offered as an
    alternative to the paper's plain percentile interval for the
    ablation study.
    """
    return ConfidenceInterval(
        2.0 * point_estimate - percentile_ci.high,
        2.0 * point_estimate - percentile_ci.low,
        percentile_ci.confidence,
    )


def bootstrap_accuracy_info(
    values: Sequence[float] | np.ndarray,
    n: int,
    confidence: float = 0.95,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
) -> AccuracyInfo:
    """Algorithm BOOTSTRAP-ACCURACY-INFO(v[.], n, alpha).

    Parameters
    ----------
    values:
        The ``m`` values of the output random variable Y, in production
        order (line 4 reads them chunk by chunk).
    n:
        The d.f. sample size of Y (Lemma 3).
    confidence:
        The interval confidence level alpha.
    edges:
        Optional histogram bucket edges; when given, per-bin height
        intervals are produced too (lines 6-8, 12-14).
    interval:
        ``"percentile"`` — the paper's percentile interval (default);
        ``"basic"`` — the reflected/basic bootstrap interval for the
        mean and variance (bin heights always use percentiles).
    """
    if interval not in ("percentile", "basic"):
        raise AccuracyError(
            f"interval must be 'percentile' or 'basic', got {interval!r}"
        )
    arr = np.asarray(values, dtype=float).ravel()
    if n < 1:
        raise AccuracyError(f"d.f. sample size must be >= 1, got {n}")
    r = arr.size // n
    if r < 2:
        raise AccuracyError(
            f"need at least 2 resamples; got m={arr.size} values for n={n} "
            f"(m must be >= 2n — callers drawing Monte-Carlo values must "
            f"request mc_samples >= 2n)"
        )
    values_used = r * n
    values_dropped = arr.size - values_used
    if values_dropped > TRUNCATION_WARN_FRACTION * arr.size:
        warnings.warn(
            f"bootstrap chunking dropped {values_dropped} of {arr.size} "
            f"Monte-Carlo values (m mod n with n={n}); draw a multiple of "
            f"n values to use them all",
            stacklevel=2,
        )
    chunks = arr[:values_used].reshape(r, n)
    edges_arr = None if edges is None else np.asarray(edges, dtype=float)
    means, variances, heights = _resample_statistics(chunks, edges_arr)

    mean_ci = percentile_interval(means, confidence)
    var_ci = percentile_interval(variances, confidence)
    if interval == "basic":
        used = arr[: r * n]
        mean_ci = _basic_interval(mean_ci, float(used.mean()))
        var_point = float(used.var(ddof=1)) if used.size > 1 else 0.0
        var_ci = _basic_interval(var_ci, var_point)
        var_ci = ConfidenceInterval(
            max(var_ci.low, 0.0), max(var_ci.high, 0.0), confidence
        )
    bins: tuple[BinInterval, ...] = ()
    if heights is not None:
        assert edges_arr is not None
        bins = _height_bins(heights, edges_arr, confidence)
    return AccuracyInfo(
        mean=mean_ci,
        variance=var_ci,
        bins=bins,
        sample_size=n,
        method="bootstrap",
        values_used=values_used,
        values_dropped=values_dropped,
        draws_used=int(arr.size),
        rounds=1,
    )


def _height_bins(
    heights: np.ndarray, edges: np.ndarray, confidence: float
) -> tuple[BinInterval, ...]:
    """Per-bin percentile intervals from an ``(r, b)`` height matrix."""
    lows, highs = percentile_intervals(heights, confidence)
    lows = np.minimum(np.maximum(lows, 0.0), 1.0)
    highs = np.maximum(np.minimum(highs, 1.0), lows)
    return tuple(
        BinInterval(
            float(edges[k]),
            float(edges[k + 1]),
            ConfidenceInterval(float(lows[k]), float(highs[k]), confidence),
        )
        for k in range(heights.shape[1])
    )


def bootstrap_accuracy_batch(
    value_matrix: np.ndarray,
    n: int,
    confidence: float = 0.95,
    edges: Sequence[float] | None = None,
    interval: str = "percentile",
) -> tuple[AccuracyInfo, ...]:
    """BOOTSTRAP-ACCURACY-INFO for a whole batch of output variables.

    ``value_matrix`` has shape ``(t, m)``: row ``i`` holds the ``m``
    Monte-Carlo values of tuple ``i``'s output variable, all sharing the
    d.f. sample size ``n``.  The chunk statistics and percentile
    intervals of every tuple are computed in one vectorized pass — this
    is the stream hot path behind ``Pipeline.run_batched``.  Row ``i`` of
    the result matches ``bootstrap_accuracy_info(value_matrix[i], n,
    confidence, edges, interval)``, including the truncation warning
    when chunking drops more than ``TRUNCATION_WARN_FRACTION`` of each
    row's values (one warning covers the whole batch).
    """
    if interval not in ("percentile", "basic"):
        raise AccuracyError(
            f"interval must be 'percentile' or 'basic', got {interval!r}"
        )
    matrix = np.asarray(value_matrix, dtype=float)
    if matrix.ndim != 2:
        raise AccuracyError(
            f"value matrix must be 2-D (tuples, values), got shape "
            f"{matrix.shape}"
        )
    if n < 1:
        raise AccuracyError(f"d.f. sample size must be >= 1, got {n}")
    t, m = matrix.shape
    r = m // n
    if r < 2:
        raise AccuracyError(
            f"need at least 2 resamples; got m={m} values for n={n} "
            f"(m must be >= 2n — callers drawing Monte-Carlo values must "
            f"request mc_samples >= 2n)"
        )
    values_used = r * n
    values_dropped = m - values_used
    if values_dropped > TRUNCATION_WARN_FRACTION * m:
        warnings.warn(
            f"bootstrap chunking dropped {values_dropped} of {m} "
            f"Monte-Carlo values per row (m mod n with n={n}, "
            f"{t} rows); draw a multiple of n values to use them all",
            stacklevel=2,
        )
    chunks = matrix[:, :values_used].reshape(t * r, n)
    edges_arr = None if edges is None else np.asarray(edges, dtype=float)
    means, variances, heights = _resample_statistics(chunks, edges_arr)
    # Statistic matrices with resamples on axis 0 and tuples on axis 1.
    mean_lo, mean_hi = percentile_intervals(
        means.reshape(t, r).T, confidence
    )
    var_lo, var_hi = percentile_intervals(
        variances.reshape(t, r).T, confidence
    )
    per_row_bins: list[tuple[BinInterval, ...]] | None = None
    if heights is not None:
        assert edges_arr is not None
        # (t*r, b) tuple-major rows -> per-row (r, b) height matrices.
        stacked = heights.reshape(t, r, -1)
        per_row_bins = [
            _height_bins(stacked[i], edges_arr, confidence)
            for i in range(t)
        ]
    results = []
    for i in range(t):
        mean_ci = ConfidenceInterval(
            float(mean_lo[i]), float(mean_hi[i]), confidence
        )
        var_ci = ConfidenceInterval(
            float(var_lo[i]), float(var_hi[i]), confidence
        )
        if interval == "basic":
            used = matrix[i, :values_used]
            mean_ci = _basic_interval(mean_ci, float(used.mean()))
            var_point = float(used.var(ddof=1)) if used.size > 1 else 0.0
            var_ci = _basic_interval(var_ci, var_point)
            var_ci = ConfidenceInterval(
                max(var_ci.low, 0.0), max(var_ci.high, 0.0), confidence
            )
        results.append(
            AccuracyInfo(
                mean=mean_ci,
                variance=var_ci,
                bins=per_row_bins[i] if per_row_bins is not None else (),
                sample_size=n,
                method="bootstrap",
                values_used=values_used,
                values_dropped=values_dropped,
                draws_used=m,
                rounds=1,
            )
        )
    return tuple(results)


def classical_bootstrap_accuracy(
    sample: Sequence[float] | np.ndarray,
    rng: np.random.Generator,
    confidence: float = 0.95,
    n_resamples: int = 200,
    edges: Sequence[float] | None = None,
) -> AccuracyInfo:
    """Classical with-replacement bootstrap from one sample (ablation).

    Unlike the paper's chunked algorithm, this resamples the *original*
    sample with replacement ``n_resamples`` times; used by the ablation
    bench to compare the two bootstrap designs.
    """
    arr = np.asarray(sample, dtype=float).ravel()
    if arr.size < 2:
        raise AccuracyError("classical bootstrap needs a sample of size >= 2")
    if n_resamples < 2:
        raise AccuracyError("need at least 2 resamples")
    n = arr.size
    idx = rng.integers(0, n, size=(n_resamples, n))
    chunks = arr[idx]
    edges_arr = None if edges is None else np.asarray(edges, dtype=float)
    means, variances, heights = _resample_statistics(chunks, edges_arr)

    mean_ci = percentile_interval(means, confidence)
    var_ci = percentile_interval(variances, confidence)
    bins: tuple[BinInterval, ...] = ()
    if heights is not None:
        assert edges_arr is not None
        bins = _height_bins(heights, edges_arr, confidence)
    return AccuracyInfo(
        mean=mean_ci,
        variance=var_ci,
        bins=bins,
        sample_size=n,
        method="bootstrap",
        values_used=arr.size,
        values_dropped=0,
        draws_used=n_resamples * n,
        rounds=1,
    )
