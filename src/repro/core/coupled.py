"""COUPLED-TESTS — controlling both error rates (paper §IV-C).

A single significance test only bounds the false-positive rate.  The
coupled-tests technique runs the original test T1 and its inverse T2:

* if T1 rejects -> TRUE (false-positive rate <= alpha1);
* else if T2 rejects -> FALSE (false-negative rate <= alpha2, because the
  original test's false negative is exactly the inverse test's false
  positive);
* else -> UNSURE (the data cannot support either decision at the requested
  error rates).

For the two-sided operator '<>' the algorithm splits alpha1 across the two
one-sided tests; by construction it never answers FALSE there, so the
false-negative rate is 0 and the union bound keeps the false-positive rate
below alpha1 (Theorem 3).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.predicates import SignificancePredicate, TestResult
from repro.errors import AccuracyError

__all__ = ["ThreeValued", "CoupledOutcome", "coupled_tests", "CoupledPredicate"]


class ThreeValued(enum.Enum):
    """Three-valued predicate result: TRUE, FALSE, or UNSURE."""

    TRUE = "TRUE"
    FALSE = "FALSE"
    UNSURE = "UNSURE"

    def __bool__(self) -> bool:
        """Strict truthiness: only TRUE selects a tuple; UNSURE does not."""
        return self is ThreeValued.TRUE


@dataclasses.dataclass(frozen=True, slots=True)
class CoupledOutcome:
    """Result of COUPLED-TESTS plus the underlying test outcomes."""

    value: ThreeValued
    primary: TestResult
    secondary: TestResult | None = None

    def __bool__(self) -> bool:
        return bool(self.value)


def coupled_tests(
    predicate: SignificancePredicate,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> CoupledOutcome:
    """Algorithm COUPLED-TESTS(P, alpha1, alpha2).

    ``alpha1`` bounds the false-positive rate and ``alpha2`` the
    false-negative rate of the returned three-valued decision.
    """
    for name, alpha in (("alpha1", alpha1), ("alpha2", alpha2)):
        if not 0.0 < alpha < 1.0:
            raise AccuracyError(f"{name} must be in (0,1), got {alpha}")

    if predicate.op == "<>":
        # Lines 3-7: split alpha1 between the two one-sided tests.
        test_lt = predicate.replaced(op="<", alpha=alpha1 / 2.0)
        test_gt = predicate.replaced(op=">", alpha=alpha1 / 2.0)
        result_lt = test_lt.run()
        if result_lt.reject:
            return CoupledOutcome(ThreeValued.TRUE, result_lt)
        result_gt = test_gt.run()
        if result_gt.reject:
            # Line 19: for '<>' a rejection by either side means TRUE.
            return CoupledOutcome(ThreeValued.TRUE, result_lt, result_gt)
        return CoupledOutcome(ThreeValued.UNSURE, result_lt, result_gt)

    # Lines 9-11: T1 is the original test at alpha1, T2 its inverse at alpha2.
    test_1 = (
        predicate if predicate.alpha == alpha1
        else predicate.replaced(alpha=alpha1)
    )
    result_1 = test_1.run()
    if result_1.reject:
        return CoupledOutcome(ThreeValued.TRUE, result_1)
    test_2 = predicate.inverse().replaced(alpha=alpha2)
    result_2 = test_2.run()
    if result_2.reject:
        return CoupledOutcome(ThreeValued.FALSE, result_1, result_2)
    return CoupledOutcome(ThreeValued.UNSURE, result_1, result_2)


@dataclasses.dataclass(frozen=True, slots=True)
class CoupledPredicate:
    """A significance predicate evaluated with coupled error-rate control.

    Wraps any :class:`SignificancePredicate` with (alpha1, alpha2); calling
    :meth:`evaluate` runs COUPLED-TESTS.  This is the form significance
    predicates take inside WHERE clauses of the query layer.
    """

    predicate: SignificancePredicate
    alpha1: float = 0.05
    alpha2: float = 0.05

    def evaluate(self) -> CoupledOutcome:
        return coupled_tests(self.predicate, self.alpha1, self.alpha2)
