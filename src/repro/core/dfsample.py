"""De facto sample algebra — Definition 2, Lemma 3, and Lemma 4.

A query-result random variable ``Y = f(X_1, ..., X_d)`` is not directly
observable, but each tuple of input observations yields a *de facto
observation* of Y.  Lemma 3: the d.f. sample size of Y is the minimum of
the input sample sizes.  Lemma 4: the number of distinct d.f. samples is
``prod_{i=2..d} n_i! / (n_i - n)!`` (inputs ordered by ascending n_i).

A ``None`` sample size denotes an effectively infinite sample — a
deterministic constant or an exactly-known distribution — which never
constrains the minimum.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable

from repro.distributions.base import Distribution
from repro.errors import AccuracyError

__all__ = ["df_sample_size", "df_sample_count", "DfSized"]


def df_sample_size(sizes: Iterable[int | None]) -> int | None:
    """Lemma 3: d.f. sample size = min over the input sample sizes.

    ``None`` entries (constants / exact inputs) are ignored; if every input
    is exact the result is ``None`` — the output carries no sampling error.
    """
    finite = []
    for size in sizes:
        if size is None:
            continue
        if size < 1:
            raise AccuracyError(f"sample sizes must be >= 1, got {size}")
        finite.append(int(size))
    if not finite:
        return None
    return min(finite)


def df_sample_count(sizes: Iterable[int | None]) -> int | None:
    """Lemma 4: number of distinct d.f. samples of the output r.v.

    With input sizes sorted ascending as n_1 <= ... <= n_d and
    n = n_1, the count is ``prod_{i=2..d} P(n_i, n)`` where P is the
    number of n-permutations.  Returns ``None`` when every input is exact
    (no sampling at all), and 1 when there is a single sampled input.
    """
    finite = sorted(
        int(s) for s in sizes if s is not None
    )
    if not finite:
        return None
    if any(s < 1 for s in finite):
        raise AccuracyError("sample sizes must be >= 1")
    n = finite[0]
    count = 1
    for n_i in finite[1:]:
        count *= math.perm(n_i, n)
    return count


@dataclasses.dataclass(frozen=True, slots=True)
class DfSized:
    """A distribution together with the sample size behind it.

    This is the unit of value that flows through expression evaluation:
    the distribution answers probabilistic questions, the sample size
    drives accuracy via Theorem 1.  ``sample_size=None`` marks an exact
    value (constants, closed-form results of exact inputs).
    """

    distribution: Distribution
    sample_size: int | None = None

    def __post_init__(self) -> None:
        if self.sample_size is not None and self.sample_size < 1:
            raise AccuracyError(
                f"sample size must be >= 1 or None, got {self.sample_size}"
            )

    @staticmethod
    def combine_sizes(operands: Iterable["DfSized"]) -> int | None:
        """d.f. sample size of a function of the given operands (Lemma 3)."""
        return df_sample_size(op.sample_size for op in operands)
