"""Value types for accuracy information (paper §II-B).

Accuracy of a distribution is represented by confidence intervals on
selected parameters:

* for a histogram — one interval per bin height,
* for an arbitrary distribution — intervals on the mean and the variance,
* for a result tuple — an interval on its membership probability (a
  one-bin histogram).

These are immutable value objects; the math that produces them lives in
:mod:`repro.core.analytic` and :mod:`repro.core.bootstrap`.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

from repro.errors import AccuracyError

__all__ = [
    "ConfidenceInterval",
    "BinInterval",
    "TupleProbabilityInterval",
    "AccuracyInfo",
]


@dataclasses.dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """An interval [low, high] that covers a parameter with confidence level.

    ``confidence`` is the confidence coefficient, e.g. 0.95 for a 95%
    interval.
    """

    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if math.isnan(self.low) or math.isnan(self.high):
            raise AccuracyError("confidence interval bounds must not be NaN")
        if self.high < self.low:
            raise AccuracyError(
                f"interval upper bound {self.high} below lower bound {self.low}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise AccuracyError(
                f"confidence level must be in (0,1), got {self.confidence}"
            )

    @property
    def length(self) -> float:
        """Width of the interval; shorter means more accurate."""
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def contains(self, value: float) -> bool:
        """Whether the (true) value falls inside the interval."""
        return self.low <= value <= self.high

    def clamped(self, lo: float, hi: float) -> "ConfidenceInterval":
        """Intersect with [lo, hi] — e.g. probabilities live in [0, 1]."""
        new_low = min(max(self.low, lo), hi)
        new_high = max(min(self.high, hi), new_low)
        return ConfidenceInterval(new_low, new_high, self.confidence)

    def __str__(self) -> str:
        return (
            f"[{self.low:.4g}, {self.high:.4g}] "
            f"@{self.confidence * 100:.0f}%"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class BinInterval:
    """Accuracy-annotated histogram bin: (b_i, p_i1, p_i2, c_i) of §II-B."""

    lower_edge: float
    upper_edge: float
    interval: ConfidenceInterval

    @property
    def point_estimate(self) -> float:
        """The learned bin height p_i (interval midpoint for Wald intervals)."""
        return self.interval.midpoint


@dataclasses.dataclass(frozen=True, slots=True)
class TupleProbabilityInterval:
    """Confidence interval on a result tuple's membership probability."""

    interval: ConfidenceInterval

    def __post_init__(self) -> None:
        clamped = self.interval.clamped(0.0, 1.0)
        if clamped != self.interval:
            object.__setattr__(self, "interval", clamped)


@dataclasses.dataclass(frozen=True, slots=True)
class AccuracyInfo:
    """Complete accuracy record of one distribution-valued query field.

    Exactly mirrors Figure 2 of the paper: per-bin intervals when the
    distribution is a histogram, plus mean/variance intervals that apply to
    any distribution.  ``sample_size`` records the (de facto) sample size
    the intervals were derived from.
    """

    mean: ConfidenceInterval
    variance: ConfidenceInterval
    bins: tuple[BinInterval, ...] = ()
    sample_size: int = 0
    method: str = "analytic"
    # Bootstrap observability: how many Monte-Carlo values the chunking
    # consumed vs. discarded (the trailing m mod n values).  Zero for the
    # analytic method.
    values_used: int = 0
    values_dropped: int = 0
    # Draw-budget observability: how many Monte-Carlo values were drawn
    # to produce this record, and over how many escalation rounds.  A
    # fixed-budget bootstrap reports one round; the adaptive
    # early-stopping path (core.adaptive) reports the round at which the
    # width target was reached.  Zero for the analytic method.
    draws_used: int = 0
    rounds: int = 0
    # Synopsis observability: the additional rank/probability-unit error
    # introduced by a bounded-memory sketch synopsis standing in for the
    # full sample (see repro.learning.sketch and docs/SKETCHES.md).
    # Zero when the intervals were derived from exact retained state;
    # when positive, the intervals above have already been widened by
    # the corresponding value-unit amounts (sketch error composed with
    # the sampling error).
    synopsis_error: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_size < 0:
            raise AccuracyError(
                f"sample size must be >= 0, got {self.sample_size}"
            )
        if self.method not in ("analytic", "bootstrap"):
            raise AccuracyError(f"unknown accuracy method {self.method!r}")
        if self.values_used < 0 or self.values_dropped < 0:
            raise AccuracyError(
                "values_used and values_dropped must be >= 0, got "
                f"{self.values_used} and {self.values_dropped}"
            )
        if self.draws_used < 0 or self.rounds < 0:
            raise AccuracyError(
                "draws_used and rounds must be >= 0, got "
                f"{self.draws_used} and {self.rounds}"
            )
        if not (self.synopsis_error >= 0.0) or math.isinf(
            self.synopsis_error
        ):
            raise AccuracyError(
                f"synopsis error must be finite and >= 0, "
                f"got {self.synopsis_error}"
            )

    def widened(
        self,
        mean_eps: float,
        variance_eps: float = 0.0,
        bin_eps: float = 0.0,
        synopsis_error: float | None = None,
    ) -> "AccuracyInfo":
        """Compose a synopsis error bound with these sampling intervals.

        Bounded-memory sketch synopses (:mod:`repro.learning.sketch`)
        stand in for the full retained sample: their estimates carry a
        quantified additional error on top of the Lemma 1/2 sampling
        error.  This widens the mean interval by ``±mean_eps`` (value
        units), the variance interval by ``±variance_eps`` (the lower
        bound stays >= 0), and every bin-height interval by ``±bin_eps``
        (clamped to [0, 1]), and records ``synopsis_error`` (defaults to
        ``bin_eps``, the synopsis' native rank/probability-unit bound)
        so provenance can report it.  With all epsilons zero the record
        is returned unchanged.
        """
        if mean_eps < 0 or variance_eps < 0 or bin_eps < 0:
            raise AccuracyError(
                f"synopsis widening must be >= 0, got "
                f"({mean_eps}, {variance_eps}, {bin_eps})"
            )
        recorded = bin_eps if synopsis_error is None else synopsis_error
        if mean_eps == 0.0 and variance_eps == 0.0 and bin_eps == 0.0:
            if recorded == self.synopsis_error:
                return self
            return dataclasses.replace(self, synopsis_error=recorded)
        mean = ConfidenceInterval(
            self.mean.low - mean_eps,
            self.mean.high + mean_eps,
            self.mean.confidence,
        )
        variance = ConfidenceInterval(
            max(self.variance.low - variance_eps, 0.0),
            self.variance.high + variance_eps,
            self.variance.confidence,
        )
        bins = self.bins
        if bin_eps and bins:
            bins = tuple(
                BinInterval(
                    b.lower_edge,
                    b.upper_edge,
                    ConfidenceInterval(
                        b.interval.low - bin_eps,
                        b.interval.high + bin_eps,
                        b.interval.confidence,
                    ).clamped(0.0, 1.0),
                )
                for b in bins
            )
        return dataclasses.replace(
            self,
            mean=mean,
            variance=variance,
            bins=bins,
            synopsis_error=recorded,
        )

    @property
    def has_bins(self) -> bool:
        return bool(self.bins)

    def bin_intervals(self) -> Sequence[ConfidenceInterval]:
        """The bare per-bin confidence intervals, in bin order."""
        return tuple(b.interval for b in self.bins)

    def describe(self) -> str:
        """Human-readable multi-line rendering for query output."""
        lines = [
            f"accuracy (method={self.method}, n={self.sample_size}):",
            f"  mean     {self.mean}",
            f"  variance {self.variance}",
        ]
        if self.synopsis_error:
            lines.append(
                f"  synopsis error +/-{self.synopsis_error:.4g} "
                f"(sketch, folded into the intervals above)"
            )
        for b in self.bins:
            lines.append(
                f"  bin [{b.lower_edge:.4g}, {b.upper_edge:.4g}) "
                f"{b.interval}"
            )
        return "\n".join(lines)
