"""Weighted samples and effective sample size (§VII future-work extension).

The paper's conclusion proposes letting recent observations weigh more when
quantifying accuracy.  We realise that with exponential-decay weights and
the Kish effective sample size ``n_eff = (sum w)^2 / sum(w^2)``: the same
Lemma 1/2 machinery then runs with ``n_eff`` in place of ``n``, and the
weighted mean / weighted unbiased variance in place of the plain
statistics.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

import numpy as np

from repro.core.accuracy import AccuracyInfo
from repro.core.analytic import mean_interval, variance_interval
from repro.errors import AccuracyError

__all__ = [
    "exponential_weights",
    "effective_sample_size",
    "WeightedStats",
    "weighted_stats",
    "weighted_accuracy",
]


def exponential_weights(
    ages: Sequence[float] | np.ndarray, half_life: float
) -> np.ndarray:
    """Weights ``0.5 ** (age / half_life)`` for observation ages >= 0.

    Age 0 (the freshest observation) gets weight 1; an observation one
    half-life old gets weight 0.5; and so on.
    """
    if half_life <= 0:
        raise AccuracyError(f"half-life must be > 0, got {half_life}")
    arr = np.asarray(ages, dtype=float).ravel()
    if np.any(arr < 0):
        raise AccuracyError("observation ages must be >= 0")
    return np.power(0.5, arr / half_life)


def effective_sample_size(weights: Sequence[float] | np.ndarray) -> float:
    """Kish effective sample size ``(sum w)^2 / sum(w^2)``.

    Equal weights give exactly n; concentrating the weight on fewer
    observations shrinks it toward 1.
    """
    w = np.asarray(weights, dtype=float).ravel()
    if w.size == 0 or np.any(w < 0) or w.sum() <= 0:
        raise AccuracyError(
            "weights must be non-negative, non-empty, and not all zero"
        )
    return float(w.sum() ** 2 / np.dot(w, w))


class WeightedStats(NamedTuple):
    """Weighted mean, weighted unbiased variance, and effective n."""

    mean: float
    variance: float
    n_eff: float


def weighted_stats(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> WeightedStats:
    """Weighted mean and (reliability-weighted) unbiased variance."""
    x = np.asarray(values, dtype=float).ravel()
    w = np.asarray(weights, dtype=float).ravel()
    if x.size != w.size:
        raise AccuracyError(
            f"{x.size} values but {w.size} weights"
        )
    n_eff = effective_sample_size(w)
    w_sum = w.sum()
    mean = float(np.dot(w, x) / w_sum)
    if n_eff <= 1.0:
        variance = 0.0
    else:
        # Reliability-weights unbiased estimator:
        # sum w (x - m)^2 / (sum w - sum w^2 / sum w).
        correction = w_sum - np.dot(w, w) / w_sum
        variance = float(np.dot(w, (x - mean) ** 2) / correction)
    return WeightedStats(mean, variance, n_eff)


def weighted_accuracy(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
) -> AccuracyInfo:
    """Accuracy info from a weighted sample via the effective sample size.

    ``n_eff`` is floored at 2 for the interval formulas (a sample that
    decayed below two effective observations cannot support an interval —
    we report the widest thing the machinery allows rather than crash,
    and callers can inspect ``sample_size`` to detect the floor).
    """
    ws = weighted_stats(values, weights)
    n = max(int(np.floor(ws.n_eff)), 2)
    std = float(np.sqrt(ws.variance))
    return AccuracyInfo(
        mean=mean_interval(ws.mean, std, n, confidence),
        variance=variance_interval(ws.variance, n, confidence),
        bins=(),
        sample_size=n,
        method="analytic",
    )
