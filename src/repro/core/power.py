"""Analytic power functions of the significance predicates (paper §IV-C).

The power gamma of a test is the probability of returning TRUE when the
alternative hypothesis actually holds.  For coupled tests, TRUE only ever
comes from the primary test T1, so the coupled power equals the single-test
power; the coupled machinery additionally yields probabilities of FALSE
and UNSURE outcomes, which we expose because the paper studies power via
the UNSURE rate (Figures 5(g) and 5(h)).

All formulas use the large-sample normal approximation of the test
statistic; the experiment harness measures power empirically and these
functions provide the reference curves.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from scipy import stats

from repro.errors import AccuracyError, QueryError

__all__ = [
    "m_test_power",
    "p_test_power",
    "CoupledPowerProfile",
    "coupled_m_test_power",
    "coupled_p_test_power",
]


def _effect_shift(true_mean: float, c: float, scale: float, op: str) -> float:
    """Location of the test statistic under the truth, oriented so that a
    larger shift always means an easier rejection for the given op."""
    if op == ">":
        return (true_mean - c) / scale
    if op == "<":
        return (c - true_mean) / scale
    raise QueryError(f"power is defined for one-sided ops, got {op!r}")


def m_test_power(
    true_mean: float,
    true_std: float,
    n: int,
    op: str,
    c: float,
    alpha: float = 0.05,
) -> float:
    """P[mTest returns TRUE] when the field truly has the given mean/std."""
    if n < 2:
        raise AccuracyError(f"need n >= 2, got {n}")
    if true_std <= 0:
        raise AccuracyError(f"need true_std > 0, got {true_std}")
    scale = true_std / math.sqrt(n)
    shift = _effect_shift(true_mean, c, scale, op)
    z_alpha = float(stats.norm.isf(alpha))
    return float(stats.norm.cdf(shift - z_alpha))


def p_test_power(
    true_p: float,
    n: int,
    op: str,
    tau: float,
    alpha: float = 0.05,
) -> float:
    """P[pTest returns TRUE] when the predicate truly holds w.p. true_p.

    The statistic uses the null scale sqrt(tau(1-tau)/n) while the estimate
    fluctuates with the true scale sqrt(p(1-p)/n); both appear below.
    """
    if n < 1:
        raise AccuracyError(f"need n >= 1, got {n}")
    if not 0.0 < true_p < 1.0 or not 0.0 < tau < 1.0:
        raise AccuracyError("true_p and tau must be in (0,1)")
    z_alpha = float(stats.norm.isf(alpha))
    null_scale = math.sqrt(tau * (1.0 - tau) / n)
    true_scale = math.sqrt(true_p * (1.0 - true_p) / n)
    if op == ">":
        threshold = tau + z_alpha * null_scale
        return float(stats.norm.sf((threshold - true_p) / true_scale))
    if op == "<":
        threshold = tau - z_alpha * null_scale
        return float(stats.norm.cdf((threshold - true_p) / true_scale))
    raise QueryError(f"power is defined for one-sided ops, got {op!r}")


class CoupledPowerProfile(NamedTuple):
    """Probabilities of each three-valued outcome under the true parameters."""

    p_true: float
    p_false: float
    p_unsure: float


def coupled_m_test_power(
    true_mean: float,
    true_std: float,
    n: int,
    op: str,
    c: float,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> CoupledPowerProfile:
    """Outcome probabilities of coupled mTest under the true mean/std.

    With the statistic approximately N(shift, 1): TRUE iff it exceeds
    z_{alpha1}, FALSE iff it falls below -z_{alpha2}, UNSURE in between.
    """
    if true_std <= 0:
        raise AccuracyError(f"need true_std > 0, got {true_std}")
    scale = true_std / math.sqrt(n)
    shift = _effect_shift(true_mean, c, scale, op)
    z1 = float(stats.norm.isf(alpha1))
    z2 = float(stats.norm.isf(alpha2))
    p_true = float(stats.norm.sf(z1 - shift))
    p_false = float(stats.norm.cdf(-z2 - shift))
    return CoupledPowerProfile(p_true, p_false, max(0.0, 1 - p_true - p_false))


def coupled_p_test_power(
    true_p: float,
    n: int,
    op: str,
    tau: float,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> CoupledPowerProfile:
    """Outcome probabilities of coupled pTest under the true probability."""
    p_true = p_test_power(true_p, n, op, tau, alpha1)
    inverse = {"<": ">", ">": "<"}.get(op)
    if inverse is None:
        raise QueryError(f"power is defined for one-sided ops, got {op!r}")
    p_false = p_test_power(true_p, n, inverse, tau, alpha2)
    return CoupledPowerProfile(
        p_true, p_false, max(0.0, 1.0 - p_true - p_false)
    )
