"""The paper's primary contribution: accuracy-aware machinery.

* :mod:`repro.core.accuracy` — confidence-interval value types (§II-B).
* :mod:`repro.core.analytic` — Lemmas 1 & 2 and Theorem 1 (§II).
* :mod:`repro.core.dfsample` — de facto sample algebra (Def. 2, Lemmas 3/4).
* :mod:`repro.core.bootstrap` — BOOTSTRAP-ACCURACY-INFO (§III).
* :mod:`repro.core.predicates` — mTest / mdTest / pTest (§IV-B).
* :mod:`repro.core.coupled` — COUPLED-TESTS and three-valued logic (§IV-C).
* :mod:`repro.core.power` — power functions of the tests.
* :mod:`repro.core.effective` — weighted-sample extension (§VII future work).
"""

from repro.core.accuracy import (
    ConfidenceInterval,
    BinInterval,
    AccuracyInfo,
    TupleProbabilityInterval,
)
from repro.core.analytic import (
    bin_height_interval,
    bin_height_intervals,
    proportion_interval_wald,
    proportion_interval_wilson,
    proportion_intervals_wald,
    proportion_intervals_wilson,
    histogram_accuracy,
    mean_interval,
    mean_intervals,
    variance_interval,
    variance_intervals,
    distribution_accuracy,
    accuracy_from_moments,
    tuple_probability_interval,
    tuple_probability_intervals,
    accuracy_from_sample,
    accuracy_from_stats,
)
from repro.core.dfsample import (
    df_sample_size,
    df_sample_count,
    DfSized,
)
from repro.core.bootstrap import (
    bootstrap_accuracy_info,
    bootstrap_accuracy_batch,
    percentile_interval,
    percentile_intervals,
    classical_bootstrap_accuracy,
)
from repro.core.adaptive import (
    IncrementalBootstrap,
    adaptive_bootstrap_accuracy_info,
    adaptive_bootstrap_from_values,
    resample_schedule,
    width_calibration,
)
from repro.core.predicates import (
    FieldStats,
    TestResult,
    m_test,
    md_test,
    p_test,
    v_test,
    SignificancePredicate,
    MTest,
    MdTest,
    PTest,
    VTest,
)
from repro.core.coupled import ThreeValued, coupled_tests, CoupledPredicate
from repro.core.power import (
    m_test_power,
    p_test_power,
    coupled_m_test_power,
    coupled_p_test_power,
)
from repro.core.effective import effective_sample_size, exponential_weights

__all__ = [
    "ConfidenceInterval",
    "BinInterval",
    "AccuracyInfo",
    "TupleProbabilityInterval",
    "bin_height_interval",
    "bin_height_intervals",
    "proportion_interval_wald",
    "proportion_interval_wilson",
    "proportion_intervals_wald",
    "proportion_intervals_wilson",
    "histogram_accuracy",
    "mean_interval",
    "mean_intervals",
    "variance_interval",
    "variance_intervals",
    "distribution_accuracy",
    "accuracy_from_moments",
    "tuple_probability_interval",
    "tuple_probability_intervals",
    "accuracy_from_sample",
    "accuracy_from_stats",
    "df_sample_size",
    "df_sample_count",
    "DfSized",
    "bootstrap_accuracy_info",
    "bootstrap_accuracy_batch",
    "adaptive_bootstrap_accuracy_info",
    "adaptive_bootstrap_from_values",
    "IncrementalBootstrap",
    "resample_schedule",
    "width_calibration",
    "percentile_interval",
    "percentile_intervals",
    "classical_bootstrap_accuracy",
    "FieldStats",
    "TestResult",
    "m_test",
    "md_test",
    "p_test",
    "v_test",
    "SignificancePredicate",
    "MTest",
    "MdTest",
    "PTest",
    "VTest",
    "ThreeValued",
    "coupled_tests",
    "CoupledPredicate",
    "m_test_power",
    "p_test_power",
    "coupled_m_test_power",
    "coupled_p_test_power",
    "effective_sample_size",
    "exponential_weights",
]
