"""Analytical accuracy methods — Lemmas 1 & 2 and Theorem 1 of the paper.

Lemma 1 gives confidence intervals on histogram bin heights using the
normal approximation to the binomial (the Wald interval) when the paper's
validity rule ``n*p_i >= 4 and n*(1-p_i) >= 4`` holds, and the Wilson score
interval otherwise.

Lemma 2 gives intervals on the mean (Student-t for n < 30, z otherwise)
and on the variance (chi-square), of an arbitrary distribution learned
from a sample of size n.

Theorem 1 lifts both lemmas to query results: use the *de facto* sample
size of the output random variable (Lemma 3, :mod:`repro.core.dfsample`)
as ``n`` and the result distribution's mean/standard deviation as the
sample statistics.
"""

from __future__ import annotations

import functools

import numpy as np
from scipy import special

from repro.core.accuracy import (
    AccuracyInfo,
    BinInterval,
    ConfidenceInterval,
    TupleProbabilityInterval,
)
from repro.distributions.base import Distribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import AccuracyError

__all__ = [
    "SMALL_SAMPLE_MEAN_CUTOFF",
    "WALD_VALIDITY_COUNT",
    "proportion_interval_wald",
    "proportion_interval_wilson",
    "bin_height_interval",
    "histogram_accuracy",
    "mean_interval",
    "variance_interval",
    "distribution_accuracy",
    "tuple_probability_interval",
    "accuracy_from_sample",
]

# Lemma 2 switches from the Student-t to the z interval at this n.
SMALL_SAMPLE_MEAN_CUTOFF = 30
# Lemma 1 requires both expected counts (n*p and n*(1-p)) to be at least
# this large for the normal approximation to the binomial to be valid.
WALD_VALIDITY_COUNT = 4


@functools.lru_cache(maxsize=4096)
def _z_upper(alpha_half: float) -> float:
    """Upper ``alpha_half`` percentile of the standard normal, z_{a/2}.

    Cached: streams evaluate millions of intervals with a handful of
    distinct confidence levels, so the quantile is a lookup, not a solve.
    """
    return float(special.ndtri(1.0 - alpha_half))


@functools.lru_cache(maxsize=4096)
def _t_upper(alpha_half: float, df: int) -> float:
    """Upper percentile of the Student-t with ``df`` degrees of freedom."""
    return float(special.stdtrit(df, 1.0 - alpha_half))


@functools.lru_cache(maxsize=4096)
def _chi2_upper(tail: float, df: int) -> float:
    """Chi-square value with right-tail area ``tail`` at ``df`` dof."""
    return float(special.chdtri(df, tail))


def _check_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )
    return confidence


def _check_sample_size(n: int, minimum: int = 1) -> int:
    if n < minimum:
        raise AccuracyError(
            f"sample size must be >= {minimum}, got {n}"
        )
    return int(n)


# ---------------------------------------------------------------------------
# Lemma 1: bin-height / proportion intervals
# ---------------------------------------------------------------------------

def proportion_interval_wald(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Equation (1): the normal-approximation (Wald) proportion interval.

    ``p ± z_{(1-c)/2} * sqrt(p * (1-p) / n)``, clamped to [0, 1].
    """
    _check_confidence(confidence)
    _check_sample_size(n)
    if not 0.0 <= p <= 1.0:
        raise AccuracyError(f"proportion must be in [0,1], got {p}")
    z = _z_upper((1.0 - confidence) / 2.0)
    half = z * np.sqrt(p * (1.0 - p) / n)
    return ConfidenceInterval(p - half, p + half, confidence).clamped(0.0, 1.0)


def proportion_interval_wilson(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Equation (2): the Wilson score interval for small expected counts.

    ``(p + z^2/2n ± z * sqrt(p(1-p)/n + z^2/4n^2)) / (1 + z^2/n)``.
    """
    _check_confidence(confidence)
    _check_sample_size(n)
    if not 0.0 <= p <= 1.0:
        raise AccuracyError(f"proportion must be in [0,1], got {p}")
    z = _z_upper((1.0 - confidence) / 2.0)
    z2 = z * z
    center = p + z2 / (2.0 * n)
    half = z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    denom = 1.0 + z2 / n
    return ConfidenceInterval(
        (center - half) / denom, (center + half) / denom, confidence
    ).clamped(0.0, 1.0)


def bin_height_interval(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Lemma 1 dispatch: Wald when valid, Wilson score otherwise."""
    if n * p >= WALD_VALIDITY_COUNT and n * (1.0 - p) >= WALD_VALIDITY_COUNT:
        return proportion_interval_wald(p, n, confidence)
    return proportion_interval_wilson(p, n, confidence)


def histogram_accuracy(
    histogram: HistogramDistribution,
    n: int,
    confidence: float = 0.95,
) -> tuple[BinInterval, ...]:
    """Per-bin accuracy of a histogram learned from a sample of size n.

    Returns the generalised representation ``{(b_i, p_i1, p_i2, c_i)}``
    of §II-B as a tuple of :class:`BinInterval`.
    """
    _check_sample_size(n)
    bins = []
    for i, p in enumerate(histogram.probabilities):
        lo, hi = histogram.bucket_bounds(i)
        bins.append(
            BinInterval(lo, hi, bin_height_interval(float(p), n, confidence))
        )
    return tuple(bins)


# ---------------------------------------------------------------------------
# Lemma 2: mean and variance intervals
# ---------------------------------------------------------------------------

def mean_interval(
    sample_mean: float,
    sample_std: float,
    n: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Equations (3)/(4): t-interval for n < 30, z-interval for n >= 30."""
    _check_confidence(confidence)
    _check_sample_size(n, minimum=2)
    if sample_std < 0:
        raise AccuracyError(f"standard deviation must be >= 0, got {sample_std}")
    alpha_half = (1.0 - confidence) / 2.0
    if n < SMALL_SAMPLE_MEAN_CUTOFF:
        quantile = _t_upper(alpha_half, n - 1)
    else:
        quantile = _z_upper(alpha_half)
    half = quantile * sample_std / np.sqrt(n)
    return ConfidenceInterval(sample_mean - half, sample_mean + half, confidence)


def variance_interval(
    sample_variance: float,
    n: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Equation (5): the chi-square interval for the variance.

    ``[(n-1)s^2 / chi2_{(1-c)/2},  (n-1)s^2 / chi2_{(1+c)/2}]`` where the
    subscripts locate right-tail areas, i.e. the denominators are the upper
    and lower chi-square critical values with n-1 degrees of freedom.
    """
    _check_confidence(confidence)
    _check_sample_size(n, minimum=2)
    if sample_variance < 0:
        raise AccuracyError(
            f"sample variance must be >= 0, got {sample_variance}"
        )
    alpha_half = (1.0 - confidence) / 2.0
    df = n - 1
    chi2_upper = _chi2_upper(alpha_half, df)        # area a/2 to the right
    chi2_lower = _chi2_upper(1.0 - alpha_half, df)  # area a/2 to the left
    low = df * sample_variance / chi2_upper
    high = df * sample_variance / chi2_lower
    return ConfidenceInterval(low, high, confidence)


# ---------------------------------------------------------------------------
# Theorem 1: accuracy of query results (and of learned source data)
# ---------------------------------------------------------------------------

def distribution_accuracy(
    distribution: Distribution,
    n: int,
    confidence: float = 0.95,
    sample_variance: float | None = None,
) -> AccuracyInfo:
    """Accuracy of a distribution given its (de facto) sample size.

    Per Theorem 1: use the distribution's mean and standard deviation as
    the sample statistics and ``n`` as the sample size.  If the
    distribution is a histogram, per-bin intervals (Lemma 1) are attached
    in addition to the mean/variance intervals.

    ``sample_variance`` overrides the variance statistic when the caller
    has the unbiased s^2 of an actual sample (the distribution's own
    ``variance()`` is a population quantity).
    """
    _check_sample_size(n, minimum=2)
    s2 = distribution.variance() if sample_variance is None else sample_variance
    s = float(np.sqrt(s2))
    info_mean = mean_interval(distribution.mean(), s, n, confidence)
    info_var = variance_interval(s2, n, confidence)
    bins: tuple[BinInterval, ...] = ()
    if isinstance(distribution, HistogramDistribution):
        bins = histogram_accuracy(distribution, n, confidence)
    return AccuracyInfo(
        mean=info_mean,
        variance=info_var,
        bins=bins,
        sample_size=n,
        method="analytic",
    )


def tuple_probability_interval(
    probability: float,
    n: int,
    confidence: float = 0.95,
) -> TupleProbabilityInterval:
    """Accuracy of a result tuple's membership probability.

    Theorem 1 treats the tuple probability as a one-bin histogram whose
    bin probability is the tuple probability, so Lemma 1 applies directly.
    """
    interval = bin_height_interval(probability, n, confidence)
    return TupleProbabilityInterval(interval)


def accuracy_from_sample(
    values: "np.ndarray | list[float]",
    confidence: float = 0.95,
    histogram: HistogramDistribution | None = None,
) -> AccuracyInfo:
    """Accuracy info computed directly from a raw observation sample.

    This is the source-data path: given the n observations a distribution
    was learned from, produce mean/variance intervals (Lemma 2) and,
    when a learned ``histogram`` is supplied, per-bin intervals (Lemma 1).
    """
    arr = np.asarray(values, dtype=float).ravel()
    n = _check_sample_size(arr.size, minimum=2)
    sample_mean = float(arr.mean())
    s2 = float(arr.var(ddof=1))
    s = float(np.sqrt(s2))
    info_mean = mean_interval(sample_mean, s, n, confidence)
    info_var = variance_interval(s2, n, confidence)
    bins: tuple[BinInterval, ...] = ()
    if histogram is not None:
        bins = histogram_accuracy(histogram, n, confidence)
    return AccuracyInfo(
        mean=info_mean,
        variance=info_var,
        bins=bins,
        sample_size=n,
        method="analytic",
    )
