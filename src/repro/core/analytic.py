"""Analytical accuracy methods — Lemmas 1 & 2 and Theorem 1 of the paper.

Lemma 1 gives confidence intervals on histogram bin heights using the
normal approximation to the binomial (the Wald interval) when the paper's
validity rule ``n*p_i >= 4 and n*(1-p_i) >= 4`` holds, and the Wilson score
interval otherwise.

Lemma 2 gives intervals on the mean (Student-t for n < 30, z otherwise)
and on the variance (chi-square), of an arbitrary distribution learned
from a sample of size n.

Theorem 1 lifts both lemmas to query results: use the *de facto* sample
size of the output random variable (Lemma 3, :mod:`repro.core.dfsample`)
as ``n`` and the result distribution's mean/standard deviation as the
sample statistics.
"""

from __future__ import annotations

import functools
from collections.abc import Sequence

import numpy as np
from scipy import special

from repro.core.accuracy import (
    AccuracyInfo,
    BinInterval,
    ConfidenceInterval,
    TupleProbabilityInterval,
)
from repro.distributions.base import Distribution
from repro.distributions.histogram import HistogramDistribution
from repro.errors import AccuracyError

__all__ = [
    "SMALL_SAMPLE_MEAN_CUTOFF",
    "WALD_VALIDITY_COUNT",
    "critical_values",
    "proportion_interval_wald",
    "proportion_interval_wilson",
    "proportion_intervals_wald",
    "proportion_intervals_wilson",
    "bin_height_interval",
    "bin_height_intervals",
    "histogram_accuracy",
    "mean_interval",
    "mean_intervals",
    "variance_interval",
    "variance_intervals",
    "distribution_accuracy",
    "accuracy_from_moments",
    "tuple_probability_interval",
    "tuple_probability_intervals",
    "accuracy_from_sample",
    "accuracy_from_stats",
]

# Lemma 2 switches from the Student-t to the z interval at this n.
SMALL_SAMPLE_MEAN_CUTOFF = 30
# Lemma 1 requires both expected counts (n*p and n*(1-p)) to be at least
# this large for the normal approximation to the binomial to be valid.
WALD_VALIDITY_COUNT = 4


@functools.lru_cache(maxsize=4096)
def _z_upper(alpha_half: float) -> float:
    """Upper ``alpha_half`` percentile of the standard normal, z_{a/2}.

    Cached: streams evaluate millions of intervals with a handful of
    distinct confidence levels, so the quantile is a lookup, not a solve.
    """
    return float(special.ndtri(1.0 - alpha_half))


@functools.lru_cache(maxsize=4096)
def _t_upper(alpha_half: float, df: int) -> float:
    """Upper percentile of the Student-t with ``df`` degrees of freedom."""
    return float(special.stdtrit(df, 1.0 - alpha_half))


@functools.lru_cache(maxsize=4096)
def _chi2_upper(tail: float, df: int) -> float:
    """Chi-square value with right-tail area ``tail`` at ``df`` dof."""
    return float(special.chdtri(df, tail))


@functools.lru_cache(maxsize=4096)
def critical_values(
    confidence: float, df: int
) -> tuple[float, float, float]:
    """All Lemma-2 critical values for one ``(confidence, df)`` pair.

    Returns ``(mean_quantile, chi2_upper, chi2_lower)``: the t (or z, at
    and above the small-sample cutoff) quantile for the mean interval and
    the two chi-square critical values for the variance interval.  The
    stream hot path evaluates these per tuple with a handful of distinct
    ``(confidence, df)`` pairs — a constant window size yields exactly
    one — so one cache entry replaces three transcendental solves per
    tuple.
    """
    _check_confidence(confidence)
    if df < 1:
        raise AccuracyError(f"degrees of freedom must be >= 1, got {df}")
    alpha_half = (1.0 - confidence) / 2.0
    n = df + 1
    if n < SMALL_SAMPLE_MEAN_CUTOFF:
        mean_quantile = _t_upper(alpha_half, df)
    else:
        mean_quantile = _z_upper(alpha_half)
    return (
        mean_quantile,
        _chi2_upper(alpha_half, df),
        _chi2_upper(1.0 - alpha_half, df),
    )


#: Batches whose sample sizes take at most this many distinct values use
#: the memoized scalar quantiles instead of array ``scipy.special`` calls
#: (stream batches typically share one window size, i.e. one df).
_UNIQUE_DF_FAST_PATH = 16


def _check_confidence(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise AccuracyError(
            f"confidence level must be in (0,1), got {confidence}"
        )
    return confidence


def _check_sample_size(n: int, minimum: int = 1) -> int:
    if n < minimum:
        raise AccuracyError(
            f"sample size must be >= {minimum}, got {n}"
        )
    return int(n)


def _as_proportions(p_vec: "np.ndarray | Sequence[float]") -> np.ndarray:
    p = np.asarray(p_vec, dtype=float).ravel()
    if p.size and (np.min(p) < 0.0 or np.max(p) > 1.0):
        raise AccuracyError("proportions must all be in [0,1]")
    return p


def _as_sizes(
    n: "int | np.ndarray | Sequence[int]", minimum: int = 1
) -> np.ndarray:
    arr = np.asarray(n)
    if arr.size and np.min(arr) < minimum:
        raise AccuracyError(
            f"sample sizes must all be >= {minimum}, got {arr.min()}"
        )
    return arr.astype(float)


# ---------------------------------------------------------------------------
# Lemma 1: bin-height / proportion intervals
# ---------------------------------------------------------------------------

def proportion_interval_wald(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Equation (1): the normal-approximation (Wald) proportion interval.

    ``p ± z_{(1-c)/2} * sqrt(p * (1-p) / n)``, clamped to [0, 1].
    """
    _check_confidence(confidence)
    _check_sample_size(n)
    if not 0.0 <= p <= 1.0:
        raise AccuracyError(f"proportion must be in [0,1], got {p}")
    z = _z_upper((1.0 - confidence) / 2.0)
    half = z * np.sqrt(p * (1.0 - p) / n)
    return ConfidenceInterval(p - half, p + half, confidence).clamped(0.0, 1.0)


def proportion_interval_wilson(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Equation (2): the Wilson score interval for small expected counts.

    ``(p + z^2/2n ± z * sqrt(p(1-p)/n + z^2/4n^2)) / (1 + z^2/n)``.
    """
    _check_confidence(confidence)
    _check_sample_size(n)
    if not 0.0 <= p <= 1.0:
        raise AccuracyError(f"proportion must be in [0,1], got {p}")
    z = _z_upper((1.0 - confidence) / 2.0)
    z2 = z * z
    center = p + z2 / (2.0 * n)
    half = z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    denom = 1.0 + z2 / n
    return ConfidenceInterval(
        (center - half) / denom, (center + half) / denom, confidence
    ).clamped(0.0, 1.0)


def bin_height_interval(
    p: float, n: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Lemma 1 dispatch: Wald when valid, Wilson score otherwise."""
    if n * p >= WALD_VALIDITY_COUNT and n * (1.0 - p) >= WALD_VALIDITY_COUNT:
        return proportion_interval_wald(p, n, confidence)
    return proportion_interval_wilson(p, n, confidence)


# ---------------------------------------------------------------------------
# Vectorized batch kernels (array-in / array-out)
#
# The scalar functions above are the Lemma 1/2 reference; these kernels
# compute the same intervals for a whole vector of bins (or a whole batch
# of stream tuples) in one NumPy pass.  They must stay element-wise
# identical to the scalar path — tests/core/test_vectorized_kernels.py
# enforces agreement to 1e-12 including the dispatch boundaries.
# ---------------------------------------------------------------------------

def proportion_intervals_wald(
    p_vec: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray",
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equation (1): Wald intervals for a vector of proportions.

    Returns ``(low, high)`` arrays clamped to [0, 1]; ``n`` may be a
    scalar or a per-element array (broadcast against ``p_vec``).
    """
    _check_confidence(confidence)
    p = _as_proportions(p_vec)
    n_arr = _as_sizes(n)
    z = _z_upper((1.0 - confidence) / 2.0)
    half = z * np.sqrt(p * (1.0 - p) / n_arr)
    low = np.minimum(np.maximum(p - half, 0.0), 1.0)
    high = np.maximum(np.minimum(p + half, 1.0), low)
    return low, high


def proportion_intervals_wilson(
    p_vec: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray",
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equation (2): Wilson score intervals, clamped to [0, 1]."""
    _check_confidence(confidence)
    p = _as_proportions(p_vec)
    n_arr = _as_sizes(n)
    z = _z_upper((1.0 - confidence) / 2.0)
    z2 = z * z
    center = p + z2 / (2.0 * n_arr)
    half = z * np.sqrt(p * (1.0 - p) / n_arr + z2 / (4.0 * n_arr * n_arr))
    denom = 1.0 + z2 / n_arr
    low = np.minimum(np.maximum((center - half) / denom, 0.0), 1.0)
    high = np.maximum(np.minimum((center + half) / denom, 1.0), low)
    return low, high


def bin_height_intervals(
    p_vec: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray",
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Lemma 1 dispatch over a vector of bin heights.

    Computes both interval families and selects per element with
    :func:`numpy.where` using the same validity rule as the scalar
    :func:`bin_height_interval` (``n·p >= 4 and n·(1−p) >= 4`` → Wald).
    """
    p = _as_proportions(p_vec)
    n_arr = _as_sizes(n)
    wald_lo, wald_hi = proportion_intervals_wald(p, n, confidence)
    wils_lo, wils_hi = proportion_intervals_wilson(p, n, confidence)
    use_wald = (n_arr * p >= WALD_VALIDITY_COUNT) & (
        n_arr * (1.0 - p) >= WALD_VALIDITY_COUNT
    )
    return np.where(use_wald, wald_lo, wils_lo), np.where(
        use_wald, wald_hi, wils_hi
    )


def histogram_accuracy(
    histogram: HistogramDistribution,
    n: int,
    confidence: float = 0.95,
) -> tuple[BinInterval, ...]:
    """Per-bin accuracy of a histogram learned from a sample of size n.

    Returns the generalised representation ``{(b_i, p_i1, p_i2, c_i)}``
    of §II-B as a tuple of :class:`BinInterval`.  All bins are computed
    in one pass through :func:`bin_height_intervals`.
    """
    _check_sample_size(n)
    lows, highs = bin_height_intervals(histogram.probabilities, n, confidence)
    edges = histogram.edges
    return tuple(
        BinInterval(
            float(edges[i]),
            float(edges[i + 1]),
            ConfidenceInterval(float(lows[i]), float(highs[i]), confidence),
        )
        for i in range(lows.size)
    )


# ---------------------------------------------------------------------------
# Lemma 2: mean and variance intervals
# ---------------------------------------------------------------------------

def mean_interval(
    sample_mean: float,
    sample_std: float,
    n: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Equations (3)/(4): t-interval for n < 30, z-interval for n >= 30."""
    _check_confidence(confidence)
    _check_sample_size(n, minimum=2)
    if sample_std < 0:
        raise AccuracyError(f"standard deviation must be >= 0, got {sample_std}")
    alpha_half = (1.0 - confidence) / 2.0
    if n < SMALL_SAMPLE_MEAN_CUTOFF:
        quantile = _t_upper(alpha_half, n - 1)
    else:
        quantile = _z_upper(alpha_half)
    half = quantile * sample_std / np.sqrt(n)
    # float() is bit-preserving; plain Python floats keep the scalar and
    # vectorized (accuracy_from_moments) paths byte-identical on the wire.
    return ConfidenceInterval(
        float(sample_mean - half), float(sample_mean + half), confidence
    )


def variance_interval(
    sample_variance: float,
    n: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Equation (5): the chi-square interval for the variance.

    ``[(n-1)s^2 / chi2_{(1-c)/2},  (n-1)s^2 / chi2_{(1+c)/2}]`` where the
    subscripts locate right-tail areas, i.e. the denominators are the upper
    and lower chi-square critical values with n-1 degrees of freedom.
    """
    _check_confidence(confidence)
    _check_sample_size(n, minimum=2)
    if sample_variance < 0:
        raise AccuracyError(
            f"sample variance must be >= 0, got {sample_variance}"
        )
    alpha_half = (1.0 - confidence) / 2.0
    df = n - 1
    chi2_upper = _chi2_upper(alpha_half, df)        # area a/2 to the right
    chi2_lower = _chi2_upper(1.0 - alpha_half, df)  # area a/2 to the left
    low = df * sample_variance / chi2_upper
    high = df * sample_variance / chi2_lower
    return ConfidenceInterval(float(low), float(high), confidence)


def mean_intervals(
    sample_means: "np.ndarray | Sequence[float]",
    sample_stds: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray | Sequence[int]",
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equations (3)/(4) over a batch of sample statistics.

    ``n`` may be a scalar or per-element array; each element dispatches
    to the Student-t or z interval exactly as :func:`mean_interval`.
    """
    _check_confidence(confidence)
    means = np.asarray(sample_means, dtype=float).ravel()
    stds = np.asarray(sample_stds, dtype=float).ravel()
    if stds.size and np.min(stds) < 0:
        raise AccuracyError("standard deviations must all be >= 0")
    n_arr = np.broadcast_to(_as_sizes(n, minimum=2), means.shape)
    alpha_half = (1.0 - confidence) / 2.0
    small = n_arr < SMALL_SAMPLE_MEAN_CUTOFF
    quantile = np.full(means.shape, _z_upper(alpha_half))
    if np.any(small):
        small_ns = n_arr[small]
        unique_ns, inverse = np.unique(small_ns, return_inverse=True)
        if unique_ns.size <= _UNIQUE_DF_FAST_PATH:
            # Memoized per-df t quantiles: stream batches share one or
            # two window sizes, so this replaces a vector solve with a
            # table lookup (identical values — same scipy routine).
            table = np.array(
                [_t_upper(alpha_half, int(v) - 1) for v in unique_ns]
            )
            quantile[small] = table[inverse]
        else:
            quantile[small] = special.stdtrit(
                small_ns - 1.0, 1.0 - alpha_half
            )
    half = quantile * stds / np.sqrt(n_arr)
    return means - half, means + half


def variance_intervals(
    sample_variances: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray | Sequence[int]",
    confidence: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Equation (5) over a batch of sample variances."""
    _check_confidence(confidence)
    variances = np.asarray(sample_variances, dtype=float).ravel()
    if variances.size and np.min(variances) < 0:
        raise AccuracyError("sample variances must all be >= 0")
    n_arr = np.broadcast_to(_as_sizes(n, minimum=2), variances.shape)
    alpha_half = (1.0 - confidence) / 2.0
    df = n_arr - 1.0
    unique_ns, inverse = np.unique(n_arr, return_inverse=True)
    if unique_ns.size <= _UNIQUE_DF_FAST_PATH:
        # Memoized per-df chi-square critical values (see mean_intervals).
        upper_table = np.array(
            [_chi2_upper(alpha_half, int(v) - 1) for v in unique_ns]
        )
        lower_table = np.array(
            [_chi2_upper(1.0 - alpha_half, int(v) - 1) for v in unique_ns]
        )
        chi2_upper = upper_table[inverse]
        chi2_lower = lower_table[inverse]
    else:
        chi2_upper = special.chdtri(df, alpha_half)
        chi2_lower = special.chdtri(df, 1.0 - alpha_half)
    return df * variances / chi2_upper, df * variances / chi2_lower


# ---------------------------------------------------------------------------
# Theorem 1: accuracy of query results (and of learned source data)
# ---------------------------------------------------------------------------

def distribution_accuracy(
    distribution: Distribution,
    n: int,
    confidence: float = 0.95,
    sample_variance: float | None = None,
) -> AccuracyInfo:
    """Accuracy of a distribution given its (de facto) sample size.

    Per Theorem 1: use the distribution's mean and standard deviation as
    the sample statistics and ``n`` as the sample size.  If the
    distribution is a histogram, per-bin intervals (Lemma 1) are attached
    in addition to the mean/variance intervals.

    ``sample_variance`` overrides the variance statistic when the caller
    has the unbiased s^2 of an actual sample (the distribution's own
    ``variance()`` is a population quantity).
    """
    _check_sample_size(n, minimum=2)
    s2 = distribution.variance() if sample_variance is None else sample_variance
    s = float(np.sqrt(s2))
    info_mean = mean_interval(distribution.mean(), s, n, confidence)
    info_var = variance_interval(s2, n, confidence)
    bins: tuple[BinInterval, ...] = ()
    if isinstance(distribution, HistogramDistribution):
        bins = histogram_accuracy(distribution, n, confidence)
    return AccuracyInfo(
        mean=info_mean,
        variance=info_var,
        bins=bins,
        sample_size=n,
        method="analytic",
    )


def tuple_probability_interval(
    probability: float,
    n: int,
    confidence: float = 0.95,
) -> TupleProbabilityInterval:
    """Accuracy of a result tuple's membership probability.

    Theorem 1 treats the tuple probability as a one-bin histogram whose
    bin probability is the tuple probability, so Lemma 1 applies directly.
    """
    interval = bin_height_interval(probability, n, confidence)
    return TupleProbabilityInterval(interval)


def tuple_probability_intervals(
    probabilities: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray | Sequence[int]",
    confidence: float = 0.95,
) -> tuple[TupleProbabilityInterval, ...]:
    """Vectorized :func:`tuple_probability_interval` over a result batch.

    ``n`` may be a scalar or a per-tuple array of d.f. sample sizes.
    """
    p = _as_proportions(probabilities)
    lows, highs = bin_height_intervals(p, n, confidence)
    return tuple(
        TupleProbabilityInterval(
            ConfidenceInterval(float(lows[i]), float(highs[i]), confidence)
        )
        for i in range(p.size)
    )


def accuracy_from_moments(
    sample_means: "np.ndarray | Sequence[float]",
    sample_variances: "np.ndarray | Sequence[float]",
    n: "int | np.ndarray | Sequence[int]",
    confidence: float = 0.95,
) -> tuple[AccuracyInfo, ...]:
    """Batched Theorem 1 for non-histogram results (the stream hot path).

    Given per-tuple means, variances and (de facto) sample sizes, one
    vectorized pass produces the mean and variance intervals of every
    tuple; only the per-tuple :class:`AccuracyInfo` wrappers are built in
    Python.  Element-wise identical to calling
    :func:`distribution_accuracy` per tuple.
    """
    means = np.asarray(sample_means, dtype=float).ravel()
    variances = np.asarray(sample_variances, dtype=float).ravel()
    if means.shape != variances.shape:
        raise AccuracyError(
            f"means and variances must have the same length, got "
            f"{means.size} and {variances.size}"
        )
    n_arr = np.broadcast_to(
        np.asarray(n), means.shape
    )
    stds = np.sqrt(variances)
    mean_lo, mean_hi = mean_intervals(means, stds, n_arr, confidence)
    var_lo, var_hi = variance_intervals(variances, n_arr, confidence)
    return tuple(
        AccuracyInfo(
            mean=ConfidenceInterval(
                float(mean_lo[i]), float(mean_hi[i]), confidence
            ),
            variance=ConfidenceInterval(
                float(var_lo[i]), float(var_hi[i]), confidence
            ),
            sample_size=int(n_arr[i]),
            method="analytic",
        )
        for i in range(means.size)
    )


def accuracy_from_stats(
    sample_mean: float,
    sample_variance: float,
    n: int,
    confidence: float = 0.95,
    histogram: HistogramDistribution | None = None,
) -> AccuracyInfo:
    """Accuracy info from pre-computed sufficient statistics.

    The rolling-learner path (``partial_add``/``partial_evict``) keeps
    the sample mean and unbiased variance incrementally and never
    materialises the observation array, so it builds accuracy from the
    statistics directly.  Given the statistics of the same sample this
    is identical to :func:`accuracy_from_sample` — both reuse the
    memoized Lemma 1/2 interval kernels above.
    """
    n = _check_sample_size(n, minimum=2)
    if sample_variance < 0:
        raise AccuracyError(
            f"sample variance must be >= 0, got {sample_variance}"
        )
    s = float(np.sqrt(sample_variance))
    info_mean = mean_interval(sample_mean, s, n, confidence)
    info_var = variance_interval(sample_variance, n, confidence)
    bins: tuple[BinInterval, ...] = ()
    if histogram is not None:
        bins = histogram_accuracy(histogram, n, confidence)
    return AccuracyInfo(
        mean=info_mean,
        variance=info_var,
        bins=bins,
        sample_size=n,
        method="analytic",
    )


def accuracy_from_sample(
    values: "np.ndarray | list[float]",
    confidence: float = 0.95,
    histogram: HistogramDistribution | None = None,
) -> AccuracyInfo:
    """Accuracy info computed directly from a raw observation sample.

    This is the source-data path: given the n observations a distribution
    was learned from, produce mean/variance intervals (Lemma 2) and,
    when a learned ``histogram`` is supplied, per-bin intervals (Lemma 1).
    """
    arr = np.asarray(values, dtype=float).ravel()
    n = _check_sample_size(arr.size, minimum=2)
    sample_mean = float(arr.mean())
    s2 = float(arr.var(ddof=1))
    s = float(np.sqrt(s2))
    info_mean = mean_interval(sample_mean, s, n, confidence)
    info_var = variance_interval(s2, n, confidence)
    bins: tuple[BinInterval, ...] = ()
    if histogram is not None:
        bins = histogram_accuracy(histogram, n, confidence)
    return AccuracyInfo(
        mean=info_mean,
        variance=info_var,
        bins=bins,
        sample_size=n,
        method="analytic",
    )
