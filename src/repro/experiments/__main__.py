"""Regenerate every paper figure's data table from the command line.

Usage::

    python -m repro.experiments            # full scale (same as benchmarks)
    python -m repro.experiments --quick    # reduced scale for a fast look

Tables print to stdout; pass ``--out DIR`` to also save one text file
per figure.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.fig4 import run_fig4, run_fig4d
from repro.experiments.fig5_bootstrap import run_fig5a, run_fig5b
from repro.experiments.fig5_power import run_fig5g, run_fig5h
from repro.experiments.fig5_predicates import run_fig5d, run_fig5e
from repro.experiments.fig5_throughput import run_fig5c, run_fig5f
from repro.experiments.harness import render_metrics_table
from repro.obs.alerts import AlertLog, render_health_table
from repro.obs.export import spans_to_json, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import parse_rule
from repro.obs.timeseries import TelemetryRecorder
from repro.obs.trace import TraceConfig, Tracer


def _experiments(
    quick: bool,
    registry: MetricsRegistry | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryRecorder | None = None,
):
    """(name, callable) pairs for every figure, scaled by --quick."""
    obs = dict(
        registry=registry, workers=workers, tracer=tracer,
        telemetry=telemetry,
    )
    if quick:
        return [
            ("fig4abc", lambda: run_fig4(
                seed=7, n_segments=25, sample_sizes=(10, 20, 40, 80),
                true_sample_size=600,
            )),
            ("fig4d", lambda: run_fig4d(seed=7, trials=60)),
            ("fig5a", lambda: run_fig5a(
                seed=11, n_route_queries=10, n_random_queries=10,
                truth_mc=5000,
            )),
            ("fig5b", lambda: run_fig5b(seed=11, n_queries=20, truth_mc=5000)),
            ("fig5c", lambda: run_fig5c(
                seed=3, n_items=1500, repeats=2, **obs
            )),
            ("fig5d", lambda: run_fig5d(
                seed=17, n_pairs=30, sample_sizes=(10, 40, 80)
            )),
            ("fig5e", lambda: run_fig5e(
                seed=17, n_pairs=30, sample_sizes=(10, 40, 80)
            )),
            ("fig5f", lambda: run_fig5f(
                seed=3, n_items=1500, repeats=2, **obs
            )),
            ("fig5g", lambda: run_fig5g(seed=23, trials=100)),
            ("fig5h", lambda: run_fig5h(seed=23, trials=100)),
        ]
    return [
        ("fig4abc", lambda: run_fig4(seed=7, n_segments=100)),
        ("fig4d", lambda: run_fig4d(seed=7, trials=300)),
        ("fig5a", lambda: run_fig5a(
            seed=11, n_route_queries=30, n_random_queries=30,
        )),
        ("fig5b", lambda: run_fig5b(seed=11, n_queries=60)),
        ("fig5c", lambda: run_fig5c(seed=3, **obs)),
        ("fig5d", lambda: run_fig5d(seed=17)),
        ("fig5e", lambda: run_fig5e(seed=17)),
        ("fig5f", lambda: run_fig5f(seed=3, **obs)),
        ("fig5g", lambda: run_fig5g(seed=23)),
        ("fig5h", lambda: run_fig5h(seed=23)),
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figure data tables.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale (~10x faster, noisier numbers)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory to save one .txt table per figure",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated figure names (e.g. fig5d,fig5e)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect and print a per-stage observability breakdown "
             "for the throughput figures (fig5c, fig5f)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="additionally measure the throughput figures (fig5c, fig5f) "
             "on the sharded process-pool path with N worker processes "
             "(0 = one per CPU; also settable via REPRO_WORKERS)",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="OUT.json",
        help="record a span trace of the throughput figures' "
             "instrumented passes (fig5c, fig5f) and export it as "
             "Chrome trace-event JSON (loads in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-provenance", action="store_true",
        help="with --trace, also record per-result accuracy provenance "
             "and write a strict-JSON span+provenance dump next to the "
             "trace (OUT.provenance.json)",
    )
    parser.add_argument(
        "--slo", action="append", default=None, metavar="RULE",
        help="evaluate an SLO rule over the throughput figures' "
             "telemetry frames (fig5c, fig5f) and print the alert log "
             "as JSON lines; repeatable.  Rule grammar: "
             "'[operator:] signal agg <=|>= threshold', e.g. "
             "'ci_width p95 <= 0.5' or 'avg: de_facto_n p5 >= 30' "
             "(see docs/MONITORING.md)",
    )
    parser.add_argument(
        "--health", action="store_true",
        help="with --slo, also print the per-rule SLO health table",
    )
    args = parser.parse_args(argv)
    if args.health and not args.slo:
        parser.error("--health requires at least one --slo RULE")
    if args.trace_provenance and args.trace is None:
        parser.error("--trace-provenance requires --trace OUT.json")
    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.workers == 0:
        from repro.parallel.config import available_cpus

        args.workers = available_cpus()

    selected = None
    if args.only:
        selected = {name.strip() for name in args.only.split(",")}
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    rules = [parse_rule(text) for text in (args.slo or [])]
    registry = MetricsRegistry() if args.metrics or args.slo else None
    tracer = None
    if args.trace is not None:
        tracer = Tracer(TraceConfig(provenance=args.trace_provenance))
    telemetry = None
    if args.slo:
        # SLO telemetry rides on the metrics registry: frames are deltas
        # of its snapshots, cut at tuple-count boundaries.
        telemetry = TelemetryRecorder(registry=registry)
    for name, runner in _experiments(
        args.quick, registry, args.workers, tracer, telemetry
    ):
        if selected is not None and name not in selected:
            continue
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        table = result.render()
        print(table)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table + "\n")
    if args.metrics and registry is not None and len(registry):
        breakdown = render_metrics_table(registry)
        print(breakdown)
        if args.out is not None:
            (args.out / "metrics.txt").write_text(breakdown + "\n")
            (args.out / "metrics.json").write_text(
                registry.to_json(indent=2) + "\n"
            )
    if telemetry is not None:
        provenance = tracer.provenance if tracer is not None else None
        log = AlertLog()
        log.evaluate(telemetry.series, rules, provenance=provenance)
        jsonl = log.to_jsonl()
        print(
            f"[slo: {len(telemetry.series)} frames, {len(rules)} rules, "
            f"{len(log)} transitions]"
        )
        if jsonl:
            print(jsonl, end="")
        health = (
            render_health_table(telemetry.series, rules, log)
            if args.health
            else None
        )
        if health is not None:
            print(health)
        if args.out is not None:
            (args.out / "slo_alerts.jsonl").write_text(jsonl)
            (args.out / "slo_frames.json").write_text(
                telemetry.to_json(indent=2) + "\n"
            )
            if health is not None:
                (args.out / "slo_health.txt").write_text(health + "\n")
    if tracer is not None and len(tracer):
        write_chrome_trace(tracer, str(args.trace))
        print(f"[trace: {len(tracer)} spans -> {args.trace}]")
        if args.trace_provenance:
            provenance_path = args.trace.with_suffix(".provenance.json")
            provenance_path.write_text(spans_to_json(tracer) + "\n")
            print(
                f"[provenance: "
                f"{len(tracer.provenance) if tracer.provenance else 0} "
                f"records -> {provenance_path}]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
