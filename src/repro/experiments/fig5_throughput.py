"""Figures 5(c) and 5(f): stream throughput impact (§V-C, §V-D).

The workload follows the paper: for each stream item 20 raw data points
are generated and a Gaussian is learned from them; the query is a
count-based sliding-window AVG with window size 1000, whose result is
again a Gaussian.  We measure maximum throughput (tuples/second) for:

* 5(c): query processing only; + analytical accuracy info (Lemma 2 on the
  window result); + bootstrap accuracy info.
* 5(f): no significance predicate; + coupled mTest; + coupled mdTest
  (current window mean vs previous result's); + coupled pTest
  (P[avg > c] > 0.8).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.analytic import distribution_accuracy
from repro.core.bootstrap import bootstrap_accuracy_info
from repro.core.coupled import coupled_tests
from repro.core.predicates import FieldStats, MdTest, MTest, PTest
from repro.experiments.harness import render_table
from repro.learning.gaussian_learner import GaussianLearner
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CountingSink,
    Operator,
    SlidingGaussianAverage,
)
from repro.streams.throughput import measure_throughput
from repro.streams.tuples import UncertainTuple

__all__ = ["ThroughputResult", "run_fig5c", "run_fig5f"]

RAW_POINTS_PER_ITEM = 20
WINDOW_SIZE = 1000


@dataclasses.dataclass
class ThroughputResult:
    """Throughput (tuples/second) per configuration, in listed order."""

    label: str
    throughputs: dict[str, float]

    def render(self) -> str:
        rows = [[name, int(tput)] for name, tput in self.throughputs.items()]
        return render_table(
            ["configuration", "tuples/second"], rows, title=self.label
        )

    def relative(self) -> dict[str, float]:
        """Throughput normalised by the first (baseline) configuration."""
        baseline = next(iter(self.throughputs.values()))
        return {
            name: tput / baseline for name, tput in self.throughputs.items()
        }


def _make_stream(
    n_items: int, seed: int, mean: float = 100.0, std: float = 10.0
) -> list[UncertainTuple]:
    """Stream items carrying 20 raw data points each (paper §V-C).

    Learning the Gaussian from the raw points is *query-processing work*
    ("the query processor learns a Gaussian distribution from them"), so
    it happens inside the pipeline, not here.
    """
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {"item": i, "points": rng.normal(mean, std, RAW_POINTS_PER_ITEM)}
        )
        for i in range(n_items)
    ]


class _LearnGaussian(Operator):
    """Learns a Gaussian attribute from each tuple's raw points (QP step)."""

    def __init__(self, points_attribute: str, output: str) -> None:
        super().__init__()
        self.points_attribute = points_attribute
        self.output = output
        self._learner = GaussianLearner()

    def process(self, tup: UncertainTuple) -> None:
        points = tup.value(self.points_attribute)
        fitted = self._learner.learn(points)  # type: ignore[arg-type]
        attributes = dict(tup.attributes)
        attributes[self.output] = fitted.as_dfsized()
        self.emit(tup.with_attributes(attributes))


class _AnalyticAccuracy(Operator):
    """Attaches analytic accuracy info to the window-average field."""

    def __init__(self, attribute: str, confidence: float = 0.9) -> None:
        super().__init__()
        self.attribute = attribute
        self.confidence = confidence

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None and field.sample_size >= 2:
            attributes = dict(tup.attributes)
            attributes["accuracy"] = distribution_accuracy(
                field.distribution, field.sample_size, self.confidence
            )
            tup = tup.with_attributes(attributes)
        self.emit(tup)


class _BootstrapAccuracy(Operator):
    """Attaches bootstrap accuracy info to the window-average field."""

    def __init__(
        self,
        attribute: str,
        confidence: float = 0.9,
        resamples: int = 20,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.attribute = attribute
        self.confidence = confidence
        self.resamples = resamples
        self._rng = np.random.default_rng(seed)

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None and field.sample_size >= 2:
            values = field.distribution.sample(
                self._rng, self.resamples * field.sample_size
            )
            attributes = dict(tup.attributes)
            attributes["accuracy"] = bootstrap_accuracy_info(
                values, field.sample_size, self.confidence
            )
            tup = tup.with_attributes(attributes)
        self.emit(tup)


def run_fig5c(
    seed: int = 0, n_items: int = 4000, repeats: int = 3
) -> ThroughputResult:
    """Figure 5(c): accuracy-computation overhead on stream throughput."""
    tuples = _make_stream(n_items, seed)

    def base() -> list[Operator]:
        return [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
        ]

    def qp_only() -> Pipeline:
        return Pipeline(base() + [CountingSink()])

    def with_analytic() -> Pipeline:
        return Pipeline(base() + [_AnalyticAccuracy("avg"), CountingSink()])

    def with_bootstrap() -> Pipeline:
        return Pipeline(
            base() + [_BootstrapAccuracy("avg", seed=seed), CountingSink()]
        )

    return ThroughputResult(
        "Figure 5(c): throughput with accuracy computation",
        {
            "QP only": measure_throughput(qp_only, tuples, repeats),
            "analytic": measure_throughput(with_analytic, tuples, repeats),
            "bootstrap": measure_throughput(with_bootstrap, tuples, repeats),
        },
    )


class _CoupledMTest(Operator):
    """Coupled mTest on the window average against a constant."""

    def __init__(self, attribute: str, constant: float) -> None:
        super().__init__()
        self.attribute = attribute
        self.constant = constant

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            stats = FieldStats.from_dfsized(field)
            coupled_tests(MTest(stats, ">", self.constant, 0.05), 0.05, 0.05)
        self.emit(tup)


class _CoupledMdTest(Operator):
    """Coupled mdTest: current window average vs the previous one."""

    def __init__(self, attribute: str) -> None:
        super().__init__()
        self.attribute = attribute
        self._previous: FieldStats | None = None

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            stats = FieldStats.from_dfsized(field)
            if self._previous is not None:
                coupled_tests(
                    MdTest(stats, self._previous, ">", 0.0, 0.05), 0.05, 0.05
                )
            self._previous = stats
        self.emit(tup)


class _CoupledPTest(Operator):
    """Coupled pTest: P[avg > constant] above a probability threshold."""

    def __init__(
        self, attribute: str, constant: float, tau: float = 0.8
    ) -> None:
        super().__init__()
        self.attribute = attribute
        self.constant = constant
        self.tau = tau

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            p_hat = field.distribution.prob_greater(self.constant)
            coupled_tests(
                PTest(p_hat, field.sample_size, self.tau, ">", 0.05),
                0.05, 0.05,
            )
        self.emit(tup)


def run_fig5f(
    seed: int = 0, n_items: int = 4000, repeats: int = 3
) -> ThroughputResult:
    """Figure 5(f): significance-predicate overhead on stream throughput."""
    tuples = _make_stream(n_items, seed)

    def base() -> list[Operator]:
        return [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
        ]

    def no_pred() -> Pipeline:
        return Pipeline(base() + [CountingSink()])

    def with_mtest() -> Pipeline:
        return Pipeline(base() + [_CoupledMTest("avg", 99.0), CountingSink()])

    def with_mdtest() -> Pipeline:
        return Pipeline(base() + [_CoupledMdTest("avg"), CountingSink()])

    def with_ptest() -> Pipeline:
        return Pipeline(
            base() + [_CoupledPTest("avg", 99.0, 0.8), CountingSink()]
        )

    return ThroughputResult(
        "Figure 5(f): throughput with significance predicates",
        {
            "no predicate": measure_throughput(no_pred, tuples, repeats),
            "mTest": measure_throughput(with_mtest, tuples, repeats),
            "mdTest": measure_throughput(with_mdtest, tuples, repeats),
            "pTest": measure_throughput(with_ptest, tuples, repeats),
        },
    )
