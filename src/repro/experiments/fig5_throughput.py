"""Figures 5(c) and 5(f): stream throughput impact (§V-C, §V-D).

The workload follows the paper: for each stream item 20 raw data points
are generated and a Gaussian is learned from them; the query is a
count-based sliding-window AVG with window size 1000, whose result is
again a Gaussian.  We measure maximum throughput (tuples/second) for:

* 5(c): query processing only; + analytical accuracy info (Lemma 2 on the
  window result); + bootstrap accuracy info.
* 5(f): no significance predicate; + coupled mTest; + coupled mdTest
  (current window mean vs previous result's); + coupled pTest
  (P[avg > c] > 0.8).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.accuracy import AccuracyInfo, ConfidenceInterval
from repro.core.adaptive import (
    DEFAULT_GROWTH,
    DEFAULT_INITIAL_RESAMPLES,
    adaptive_bootstrap_accuracy_info,
    resample_schedule,
    width_calibration,
)
from repro.core.analytic import accuracy_from_moments, distribution_accuracy
from repro.core.bootstrap import (
    _resample_statistics,
    bootstrap_accuracy_batch,
    bootstrap_accuracy_info,
    percentile_intervals,
)
from repro.core.coupled import coupled_tests
from repro.core.dfsample import DfSized
from repro.core.predicates import FieldStats, MdTest, MTest, PTest
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.harness import render_table
from repro.learning.gaussian_learner import GaussianLearner
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import lineage_from_operands
from repro.obs.timeseries import TelemetryRecorder
from repro.obs.trace import Tracer
from repro.streams.columnar import (
    EXACT_SIZE,
    ArrayColumn,
    ColumnarBatch,
    GaussianDfColumn,
    ObjectColumn,
)
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CountingSink,
    Operator,
    SlidingGaussianAverage,
)
from repro.streams.throughput import measure_throughput
from repro.streams.tuples import UncertainTuple

__all__ = ["ThroughputResult", "run_fig5c", "run_fig5f"]

RAW_POINTS_PER_ITEM = 20
WINDOW_SIZE = 1000
# Batch size for the vectorized execution path (Pipeline.run_batched).
BATCH_SIZE = 256
# Shard count for the process-pool path (Pipeline.run_sharded).  Pinned
# independently of the worker count so sharded results are identical
# whether 1, 2, or 4 workers execute the shards (the determinism
# contract of repro.parallel); 4 matches the headline 4-worker setup.
N_SHARDS = 4


@dataclasses.dataclass
class ThroughputResult:
    """Throughput (tuples/second) per configuration, in listed order."""

    label: str
    throughputs: dict[str, float]

    def render(self) -> str:
        rows = [[name, int(tput)] for name, tput in self.throughputs.items()]
        return render_table(
            ["configuration", "tuples/second"], rows, title=self.label
        )

    def relative(self) -> dict[str, float]:
        """Throughput normalised by the first (baseline) configuration."""
        baseline = next(iter(self.throughputs.values()))
        return {
            name: tput / baseline for name, tput in self.throughputs.items()
        }


def _make_stream(
    n_items: int, seed: int, mean: float = 100.0, std: float = 10.0
) -> list[UncertainTuple]:
    """Stream items carrying 20 raw data points each (paper §V-C).

    Learning the Gaussian from the raw points is *query-processing work*
    ("the query processor learns a Gaussian distribution from them"), so
    it happens inside the pipeline, not here.
    """
    rng = np.random.default_rng(seed)
    return [
        UncertainTuple(
            {"item": i, "points": rng.normal(mean, std, RAW_POINTS_PER_ITEM)}
        )
        for i in range(n_items)
    ]


class _LearnGaussian(Operator):
    """Learns a Gaussian attribute from each tuple's raw points (QP step)."""

    def __init__(self, points_attribute: str, output: str) -> None:
        super().__init__()
        self.points_attribute = points_attribute
        self.output = output
        self._learner = GaussianLearner()

    def process(self, tup: UncertainTuple) -> None:
        points = tup.value(self.points_attribute)
        fitted = self._learner.learn(points)  # type: ignore[arg-type]
        attributes = dict(tup.attributes)
        attributes[self.output] = fitted.as_dfsized()
        self.emit(tup.with_attributes(attributes))

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # All per-item point vectors have the same length, so the whole
        # batch learns from one (batch, points) matrix in two NumPy
        # reductions instead of two per tuple.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.column(self.points_attribute)
            if (
                isinstance(column, ArrayColumn)
                and column.matrix.shape[1] >= 2
            ):
                # The raw points already sit in one (batch, k) matrix —
                # learn straight off the columns, emit columns.
                matrix = column.matrix
                mus = matrix.mean(axis=1)
                sigma2s = matrix.var(axis=1, ddof=1)
                if not (
                    np.isfinite(mus).all() and np.isfinite(sigma2s).all()
                ):
                    for i in range(len(mus)):  # canonical per-row error
                        GaussianDistribution(
                            float(mus[i]), float(sigma2s[i])
                        )
                self.emit_many(
                    tuples.with_column(
                        self.output,
                        GaussianDfColumn(
                            mus,
                            sigma2s,
                            np.full(
                                len(mus), matrix.shape[1], dtype=np.int64
                            ),
                        ),
                    )
                )
                return
        points = [tup.value(self.points_attribute) for tup in tuples]
        try:
            matrix = np.asarray(points, dtype=float)
        except ValueError:
            matrix = None
        if matrix is None or matrix.ndim != 2 or matrix.shape[1] < 2:
            super().receive_many(tuples)
            return
        mus = matrix.mean(axis=1)
        sigma2s = matrix.var(axis=1, ddof=1)
        n = matrix.shape[1]
        out = []
        for i, tup in enumerate(tuples):
            attributes = dict(tup.attributes)
            attributes[self.output] = DfSized(
                GaussianDistribution(float(mus[i]), float(sigma2s[i])), n
            )
            out.append(tup.with_attributes(attributes))
        self.emit_many(out)


class _AnalyticAccuracy(Operator):
    """Attaches analytic accuracy info to the window-average field."""

    accuracy_attribute = "accuracy"

    def __init__(self, attribute: str, confidence: float = 0.9) -> None:
        super().__init__()
        self.attribute = attribute
        self.confidence = confidence

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None and field.sample_size >= 2:
            attributes = dict(tup.attributes)
            attributes["accuracy"] = distribution_accuracy(
                field.distribution, field.sample_size, self.confidence
            )
            tup = tup.with_attributes(attributes)
        self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # Vectorized Lemma 2: one mean_intervals/variance_intervals pass
        # over the whole batch instead of two interval solves per tuple.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if (
                column is not None
                and len(column)
                and bool((column.sizes >= 2).all())
            ):
                # Every row eligible: Theorem 1 straight off the
                # (mu, sigma2, n) columns, accuracy as an object column.
                infos = accuracy_from_moments(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                    self.confidence,
                )
                self.emit_many(
                    tuples.with_column(
                        "accuracy", ObjectColumn(list(infos))
                    )
                )
                return
        fields = [tup.dfsized(self.attribute) for tup in tuples]
        eligible = [
            i
            for i, f in enumerate(fields)
            if f.sample_size is not None and f.sample_size >= 2
        ]
        if not eligible:
            self.emit_many(list(tuples))
            return
        means = [fields[i].distribution.mean() for i in eligible]
        variances = [fields[i].distribution.variance() for i in eligible]
        sizes = [fields[i].sample_size for i in eligible]
        infos = accuracy_from_moments(
            means, variances, sizes, self.confidence
        )
        out = list(tuples)
        for info, i in zip(infos, eligible):
            attributes = dict(out[i].attributes)
            attributes["accuracy"] = info
            out[i] = out[i].with_attributes(attributes)
        self.emit_many(out)

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        # Theorem 1 over the window average: the de facto size of the
        # result is the Lemma-3 min over the named operands (here one).
        return lineage_from_operands(
            {self.attribute: tup.attributes.get(self.attribute)}
        )


class _BootstrapAccuracy(Operator):
    """Attaches bootstrap accuracy info to the window-average field.

    With a width target (``target_ci_width`` / ``target_relative_width``)
    the fixed ``resamples`` budget becomes a cap and draws escalate
    adaptively (:mod:`repro.core.adaptive`).  Two slide-to-slide reuse
    layers ride on top, mirroring how the rolling layer reuses window
    aggregates:

    * **warm start** — consecutive window slides need nearly the same
      budget, so each tuple's schedule starts one growth step below the
      previous tuple's stopping point instead of back at ``r0``;
    * **identical-parameter cache** — a slide that leaves the window
      result (mu, sigma2, n) bit-identical reuses the previous
      AccuracyInfo outright, drawing nothing.

    Both layers evolve deterministically with the input stream, so the
    pinned-shard determinism contract (identical sharded output at any
    worker count) is preserved.
    """

    accuracy_attribute = "accuracy"

    def __init__(
        self,
        attribute: str,
        confidence: float = 0.9,
        resamples: int = 20,
        seed: int = 0,
        target_ci_width: float | None = None,
        target_relative_width: float | None = None,
        initial_resamples: int = DEFAULT_INITIAL_RESAMPLES,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        super().__init__()
        self.attribute = attribute
        self.confidence = confidence
        self.resamples = resamples
        self.target_ci_width = target_ci_width
        self.target_relative_width = target_relative_width
        self.initial_resamples = initial_resamples
        self.growth = growth
        self._rng = np.random.default_rng(seed)
        self._warm_r = initial_resamples
        self._cache_key: tuple[float, float, int] | None = None
        self._cache_info: AccuracyInfo | None = None

    def reseed(self, seed: object) -> None:
        self._rng = np.random.default_rng(seed)
        self._warm_r = self.initial_resamples
        self._cache_key = None
        self._cache_info = None

    @property
    def adaptive(self) -> bool:
        return (
            self.target_ci_width is not None
            or self.target_relative_width is not None
        )

    def _start_resamples(self) -> int:
        # One growth step below the previous stopping point: re-probes a
        # cheaper budget when the stream gets easier, yet reaches the
        # previous budget again after a single escalation.
        return max(
            self.initial_resamples, math.ceil(self._warm_r / self.growth)
        )

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None and field.sample_size >= 2:
            n = field.sample_size
            attributes = dict(tup.attributes)
            if self.adaptive:
                dist = field.distribution
                key = None
                if isinstance(dist, GaussianDistribution):
                    key = (dist.mu, dist.sigma2, n)
                if key is not None and key == self._cache_key:
                    info = self._cache_info
                    assert info is not None
                else:
                    info = adaptive_bootstrap_accuracy_info(
                        lambda count: dist.sample(self._rng, count),
                        n,
                        self.confidence,
                        target_ci_width=self.target_ci_width,
                        target_relative_width=self.target_relative_width,
                        max_resamples=self.resamples,
                        initial_resamples=self._start_resamples(),
                        growth=self.growth,
                    )
                    self._warm_r = max(
                        self.initial_resamples, info.draws_used // n
                    )
                    self._cache_key = key
                    self._cache_info = info
                attributes["accuracy"] = info
            else:
                values = field.distribution.sample(
                    self._rng, self.resamples * n
                )
                attributes["accuracy"] = bootstrap_accuracy_info(
                    values, n, self.confidence
                )
            tup = tup.with_attributes(attributes)
        self.emit(tup)

    def _adaptive_batch(
        self, mus: np.ndarray, sigma2s: np.ndarray, n: int
    ) -> list[AccuracyInfo]:
        """Vectorized escalation over a group of Gaussian output fields.

        All rows draw together round by round; a row leaves the active
        set as soon as its calibrated interval width meets the target,
        and only the surviving rows pay for the next round.  Statistics
        accumulated in earlier rounds are carried forward, never
        recomputed.  The adaptive mode draws in a different RNG order
        than the per-tuple path (rounds are batched across rows), so
        its values differ from ``process()`` while following the same
        schedule and stopping semantics.
        """
        k = mus.size
        stds = np.sqrt(sigma2s)
        results: list[AccuracyInfo | None] = [None] * k
        active = np.arange(k)
        # Identical-parameter slides reuse the cached record directly.
        if self._cache_key is not None and self._cache_key[2] == n:
            mu0, sigma20 = self._cache_key[0], self._cache_key[1]
            hit = (mus == mu0) & (sigma2s == sigma20)
            if hit.any():
                for i in np.flatnonzero(hit):
                    results[i] = self._cache_info
                active = np.flatnonzero(~hit)
        schedule = resample_schedule(
            self._start_resamples(), self.growth, self.resamples
        )
        acc_means: np.ndarray | None = None
        acc_vars: np.ndarray | None = None
        prev_r = 0
        rounds = 0
        for r_total in schedule:
            if not active.size:
                break
            delta_r = r_total - prev_r
            if delta_r <= 0:
                continue
            block = self._rng.normal(
                mus[active][:, None],
                stds[active][:, None],
                (active.size, delta_r * n),
            )
            m_new, v_new, _ = _resample_statistics(
                block.reshape(active.size * delta_r, n), None
            )
            m_new = m_new.reshape(active.size, delta_r)
            v_new = v_new.reshape(active.size, delta_r)
            acc_means = (
                m_new
                if acc_means is None
                else np.concatenate([acc_means, m_new], axis=1)
            )
            acc_vars = (
                v_new
                if acc_vars is None
                else np.concatenate([acc_vars, v_new], axis=1)
            )
            prev_r = r_total
            rounds += 1
            mean_lo, mean_hi = percentile_intervals(
                acc_means.T, self.confidence
            )
            var_lo, var_hi = percentile_intervals(acc_vars.T, self.confidence)
            factor = width_calibration(r_total, self.confidence)
            done = np.ones(active.size, dtype=bool)
            if r_total != schedule[-1]:
                widths = (mean_hi - mean_lo) * factor
                if self.target_ci_width is not None:
                    done &= widths <= self.target_ci_width
                if self.target_relative_width is not None:
                    scale = np.abs((mean_lo + mean_hi) / 2.0)
                    done &= (scale > 0.0) & (
                        widths <= self.target_relative_width * scale
                    )
                    var_widths = (var_hi - var_lo) * factor
                    var_scale = np.abs((var_lo + var_hi) / 2.0)
                    done &= (var_scale > 0.0) & (
                        var_widths <= self.target_relative_width * var_scale
                    )
            for j in np.flatnonzero(done):
                row = int(active[j])
                results[row] = AccuracyInfo(
                    mean=ConfidenceInterval(
                        float(mean_lo[j]), float(mean_hi[j]), self.confidence
                    ),
                    variance=ConfidenceInterval(
                        float(var_lo[j]), float(var_hi[j]), self.confidence
                    ),
                    sample_size=n,
                    method="bootstrap",
                    values_used=r_total * n,
                    values_dropped=0,
                    draws_used=r_total * n,
                    rounds=rounds,
                )
            keep = ~done
            active = active[keep]
            acc_means = acc_means[keep]
            acc_vars = acc_vars[keep]
        if k:
            self._warm_r = max(
                self.initial_resamples, results[-1].draws_used // n
            )
            self._cache_key = (float(mus[-1]), float(sigma2s[-1]), n)
            self._cache_info = results[-1]
        return results  # type: ignore[return-value]

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # Vectorized BOOTSTRAP-ACCURACY-INFO: sample every tuple's output
        # variable into one (batch, m) matrix, then chunk statistics and
        # percentile intervals for the whole batch in a single pass.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if (
                column is not None
                and len(column)
                and bool((column.sizes >= 2).all())
            ):
                # Same size-grouping and RNG draw order as the tuple
                # path (one broadcast normal per group), but the moments
                # come straight off the columns.
                sizes = column.sizes.tolist()
                by_n: dict[int, list[int]] = {}
                for i, n in enumerate(sizes):
                    by_n.setdefault(n, []).append(i)
                infos_out: list[object] = [None] * len(sizes)
                for n, indices in by_n.items():
                    idx = np.asarray(indices, dtype=np.intp)
                    mus = column.mu[idx]
                    if self.adaptive:
                        infos = self._adaptive_batch(
                            mus, column.sigma2[idx], n
                        )
                    else:
                        m = self.resamples * n
                        stds = np.sqrt(column.sigma2[idx])
                        matrix = self._rng.normal(
                            mus[:, None], stds[:, None], (len(indices), m)
                        )
                        infos = bootstrap_accuracy_batch(
                            matrix, n, self.confidence
                        )
                    for info, i in zip(infos, indices):
                        infos_out[i] = info
                self.emit_many(
                    tuples.with_column("accuracy", ObjectColumn(infos_out))
                )
                return
        fields = [tup.dfsized(self.attribute) for tup in tuples]
        out = list(tuples)
        # Group eligible tuples by sample size so each group shares one
        # (batch, m) kernel call (the window workload has a constant n).
        by_n: dict[int, list[int]] = {}
        for i, f in enumerate(fields):
            if f.sample_size is not None and f.sample_size >= 2:
                by_n.setdefault(f.sample_size, []).append(i)
        for n, indices in by_n.items():
            dists = [fields[i].distribution for i in indices]
            all_gaussian = all(
                isinstance(d, GaussianDistribution) for d in dists
            )
            if self.adaptive and all_gaussian:
                infos = self._adaptive_batch(
                    np.array([d.mu for d in dists]),
                    np.array([d.sigma2 for d in dists]),
                    n,
                )
            elif self.adaptive:
                infos = [
                    adaptive_bootstrap_accuracy_info(
                        lambda count, d=d: d.sample(self._rng, count),
                        n,
                        self.confidence,
                        target_ci_width=self.target_ci_width,
                        target_relative_width=self.target_relative_width,
                        max_resamples=self.resamples,
                        initial_resamples=self._start_resamples(),
                        growth=self.growth,
                    )
                    for d in dists
                ]
            else:
                m = self.resamples * n
                if all_gaussian:
                    mus = np.array([d.mu for d in dists])
                    stds = np.sqrt([d.sigma2 for d in dists])
                    matrix = self._rng.normal(
                        mus[:, None], stds[:, None], (len(dists), m)
                    )
                else:
                    matrix = np.stack(
                        [d.sample(self._rng, m) for d in dists]
                    )
                infos = bootstrap_accuracy_batch(matrix, n, self.confidence)
            for info, i in zip(infos, indices):
                attributes = dict(out[i].attributes)
                attributes["accuracy"] = info
                out[i] = out[i].with_attributes(attributes)
        self.emit_many(out)

    def trace_lineage(self, tup: UncertainTuple) -> dict[str, object]:
        lineage = lineage_from_operands(
            {self.attribute: tup.attributes.get(self.attribute)}
        )
        lineage["resamples"] = self.resamples
        if self.target_ci_width is not None:
            lineage["target_ci_width"] = self.target_ci_width
        if self.target_relative_width is not None:
            lineage["target_relative_width"] = self.target_relative_width
        return lineage


def _slug(name: str) -> str:
    """Configuration label -> metric-name segment."""
    return (
        name.lower()
        .replace("(", "")
        .replace(")", "")
        .replace(" ", "_")
    )


def _measure_all(
    label: str,
    configurations: "dict[str, tuple]",
    tuples: Sequence[UncertainTuple],
    repeats: int,
    registry: MetricsRegistry | None,
    figure: str,
    shard_seed: int = 0,
    tracer: Tracer | None = None,
    telemetry: TelemetryRecorder | None = None,
) -> ThroughputResult:
    """Measure every configuration; with a registry, also record the
    per-stage breakdown of each one under ``{figure}.{config slug}``.

    A configuration value is ``(factory, batch_size)`` for the serial
    paths or ``(factory, batch_size, n_workers)`` for the sharded
    process-pool path (always ``N_SHARDS`` shards, seeded with
    ``shard_seed`` so the sharded runs are reproducible).
    """
    throughputs = {}
    for name, spec in configurations.items():
        factory, batch_size = spec[0], spec[1]
        workers = spec[2] if len(spec) > 2 else None
        throughputs[name] = measure_throughput(
            factory,
            tuples,
            repeats,
            batch_size=batch_size,
            registry=registry,
            metrics_prefix=f"{figure}.{_slug(name)}",
            n_workers=workers,
            n_shards=N_SHARDS if workers is not None else None,
            shard_seed=shard_seed if workers is not None else None,
            tracer=tracer,
            telemetry=telemetry,
            # Batched and sharded configurations run end-to-end columnar
            # (converted once, outside the timed region); the per-tuple
            # baseline keeps the tuple-list layout.
            layout="columnar" if batch_size is not None else "tuple",
        )
    return ThroughputResult(label, throughputs)


def run_fig5c(
    seed: int = 0,
    n_items: int = 4000,
    repeats: int = 3,
    batch_size: int = BATCH_SIZE,
    registry: MetricsRegistry | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryRecorder | None = None,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
) -> ThroughputResult:
    """Figure 5(c): accuracy-computation overhead on stream throughput.

    Each configuration is measured twice: on the per-tuple path
    (``Pipeline.run``) and on the vectorized batched path
    (``Pipeline.run_batched``, suffix "(batched)").  ``workers`` adds a
    third round on the sharded process-pool path
    (``Pipeline.run_sharded`` with ``N_SHARDS`` shards, suffix
    "(sharded xW)").  ``registry`` additionally collects a per-stage
    breakdown (tuples in/out, wall time, interval widths) from one
    instrumented pass per configuration, under metric prefix
    ``fig5c.{configuration}``.

    A width target (``target_ci_width`` / ``target_relative_width``)
    adds "bootstrap adaptive" configurations that run the same
    bootstrap stage with early-stopping draws, for a direct
    fixed-vs-adaptive throughput comparison.
    """
    tuples = _make_stream(n_items, seed)

    def base() -> list[Operator]:
        return [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
        ]

    def qp_only() -> Pipeline:
        return Pipeline(base() + [CountingSink()])

    def with_analytic() -> Pipeline:
        return Pipeline(base() + [_AnalyticAccuracy("avg"), CountingSink()])

    def with_bootstrap() -> Pipeline:
        return Pipeline(
            base() + [_BootstrapAccuracy("avg", seed=seed), CountingSink()]
        )

    def with_adaptive() -> Pipeline:
        return Pipeline(
            base()
            + [
                _BootstrapAccuracy(
                    "avg",
                    seed=seed,
                    target_ci_width=target_ci_width,
                    target_relative_width=target_relative_width,
                ),
                CountingSink(),
            ]
        )

    adaptive = target_ci_width is not None or target_relative_width is not None
    configurations: dict[str, tuple] = {
        "QP only": (qp_only, None),
        "analytic": (with_analytic, None),
        "bootstrap": (with_bootstrap, None),
    }
    if adaptive:
        configurations["bootstrap adaptive"] = (with_adaptive, None)
    configurations["QP only (batched)"] = (qp_only, batch_size)
    configurations["analytic (batched)"] = (with_analytic, batch_size)
    configurations["bootstrap (batched)"] = (with_bootstrap, batch_size)
    if adaptive:
        configurations["bootstrap adaptive (batched)"] = (
            with_adaptive, batch_size,
        )
    if workers is not None:
        suffix = f"(sharded x{workers})"
        configurations[f"QP only {suffix}"] = (qp_only, batch_size, workers)
        configurations[f"analytic {suffix}"] = (
            with_analytic, batch_size, workers,
        )
        configurations[f"bootstrap {suffix}"] = (
            with_bootstrap, batch_size, workers,
        )
        if adaptive:
            configurations[f"bootstrap adaptive {suffix}"] = (
                with_adaptive, batch_size, workers,
            )
    return _measure_all(
        "Figure 5(c): throughput with accuracy computation",
        configurations,
        tuples,
        repeats,
        registry,
        "fig5c",
        shard_seed=seed,
        tracer=tracer,
        telemetry=telemetry,
    )


class _CoupledMTest(Operator):
    """Coupled mTest on the window average against a constant."""

    def __init__(self, attribute: str, constant: float) -> None:
        super().__init__()
        self.attribute = attribute
        self.constant = constant

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            stats = FieldStats.from_dfsized(field)
            coupled_tests(MTest(stats, ">", self.constant, 0.05), 0.05, 0.05)
        self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # Columnar: run the coupled test per row straight off the
        # (mu, sigma2, n) columns; the batch passes through untouched.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                constant = self.constant
                for mu, sigma2, n in zip(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                ):
                    if n == EXACT_SIZE:
                        continue
                    stats = FieldStats(mu, float(np.sqrt(sigma2)), n)
                    coupled_tests(
                        MTest(stats, ">", constant, 0.05), 0.05, 0.05
                    )
                self.emit_many(tuples)
                return
        super().process_many(tuples)


class _CoupledMdTest(Operator):
    """Coupled mdTest: current window average vs the previous one."""

    def __init__(self, attribute: str) -> None:
        super().__init__()
        self.attribute = attribute
        self._previous: FieldStats | None = None

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            stats = FieldStats.from_dfsized(field)
            if self._previous is not None:
                coupled_tests(
                    MdTest(stats, self._previous, ">", 0.0, 0.05), 0.05, 0.05
                )
            self._previous = stats
        self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # Columnar: same per-row test chain (each row's stats become the
        # next row's "previous"), reading moments off the columns.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                previous = self._previous
                for mu, sigma2, n in zip(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                ):
                    if n == EXACT_SIZE:
                        continue
                    stats = FieldStats(mu, float(np.sqrt(sigma2)), n)
                    if previous is not None:
                        coupled_tests(
                            MdTest(stats, previous, ">", 0.0, 0.05),
                            0.05, 0.05,
                        )
                    previous = stats
                self._previous = previous
                self.emit_many(tuples)
                return
        super().process_many(tuples)


class _CoupledPTest(Operator):
    """Coupled pTest: P[avg > constant] above a probability threshold."""

    def __init__(
        self, attribute: str, constant: float, tau: float = 0.8
    ) -> None:
        super().__init__()
        self.attribute = attribute
        self.constant = constant
        self.tau = tau

    def process(self, tup: UncertainTuple) -> None:
        field = tup.dfsized(self.attribute)
        if field.sample_size is not None:
            p_hat = field.distribution.prob_greater(self.constant)
            coupled_tests(
                PTest(p_hat, field.sample_size, self.tau, ">", 0.05),
                0.05, 0.05,
            )
        self.emit(tup)

    def process_many(self, tuples: Sequence[UncertainTuple]) -> None:
        # Columnar: per-row pTest off the columns; batch passes through.
        if isinstance(tuples, ColumnarBatch):
            column = tuples.gaussian_column(self.attribute)
            if column is not None:
                constant, tau = self.constant, self.tau
                for mu, sigma2, n in zip(
                    column.mu.tolist(),
                    column.sigma2.tolist(),
                    column.sizes.tolist(),
                ):
                    if n == EXACT_SIZE:
                        continue
                    p_hat = GaussianDistribution(
                        mu, sigma2
                    ).prob_greater(constant)
                    coupled_tests(
                        PTest(p_hat, n, tau, ">", 0.05), 0.05, 0.05
                    )
                self.emit_many(tuples)
                return
        super().process_many(tuples)


def run_fig5f(
    seed: int = 0,
    n_items: int = 4000,
    repeats: int = 3,
    batch_size: int = BATCH_SIZE,
    registry: MetricsRegistry | None = None,
    workers: int | None = None,
    tracer: Tracer | None = None,
    telemetry: TelemetryRecorder | None = None,
) -> ThroughputResult:
    """Figure 5(f): significance-predicate overhead on stream throughput.

    As in :func:`run_fig5c`, every configuration is measured on both the
    per-tuple and the batched execution path — plus the sharded
    process-pool path when ``workers`` is given — with an optional
    per-stage metrics breakdown under ``fig5f.{configuration}``.
    """
    tuples = _make_stream(n_items, seed)

    def base() -> list[Operator]:
        return [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
        ]

    def no_pred() -> Pipeline:
        return Pipeline(base() + [CountingSink()])

    def with_mtest() -> Pipeline:
        return Pipeline(base() + [_CoupledMTest("avg", 99.0), CountingSink()])

    def with_mdtest() -> Pipeline:
        return Pipeline(base() + [_CoupledMdTest("avg"), CountingSink()])

    def with_ptest() -> Pipeline:
        return Pipeline(
            base() + [_CoupledPTest("avg", 99.0, 0.8), CountingSink()]
        )

    configurations: dict[str, tuple] = {
        "no predicate": (no_pred, None),
        "mTest": (with_mtest, None),
        "mdTest": (with_mdtest, None),
        "pTest": (with_ptest, None),
        "no predicate (batched)": (no_pred, batch_size),
        "mTest (batched)": (with_mtest, batch_size),
        "mdTest (batched)": (with_mdtest, batch_size),
        "pTest (batched)": (with_ptest, batch_size),
    }
    if workers is not None:
        suffix = f"(sharded x{workers})"
        configurations[f"no predicate {suffix}"] = (
            no_pred, batch_size, workers,
        )
        configurations[f"mTest {suffix}"] = (with_mtest, batch_size, workers)
        configurations[f"mdTest {suffix}"] = (with_mdtest, batch_size, workers)
        configurations[f"pTest {suffix}"] = (with_ptest, batch_size, workers)
    return _measure_all(
        "Figure 5(f): throughput with significance predicates",
        configurations,
        tuples,
        repeats,
        registry,
        "fig5f",
        shard_seed=seed,
        tracer=tracer,
        telemetry=telemetry,
    )
