"""Metrics shared by the experiments: interval misses and lengths (§V-B).

A confidence interval *misses* when the true parameter value falls
outside it; the *miss rate* over many intervals is the experiments' main
quality metric (a 90% interval should miss ~10% of the time or less).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.accuracy import ConfidenceInterval
from repro.errors import ReproError

__all__ = ["interval_miss", "miss_rate", "mean_length"]


def interval_miss(interval: ConfidenceInterval, true_value: float) -> bool:
    """True when the true value is NOT covered by the interval."""
    return not interval.contains(true_value)


def miss_rate(
    intervals: Sequence[ConfidenceInterval], true_values: Sequence[float]
) -> float:
    """Fraction of intervals that miss their true value."""
    if len(intervals) != len(true_values):
        raise ReproError(
            f"{len(intervals)} intervals but {len(true_values)} true values"
        )
    if not intervals:
        raise ReproError("cannot compute a miss rate over zero intervals")
    misses = sum(
        interval_miss(ci, v) for ci, v in zip(intervals, true_values)
    )
    return misses / len(intervals)


def mean_length(intervals: Sequence[ConfidenceInterval]) -> float:
    """Average interval length (shorter = more useful)."""
    if not intervals:
        raise ReproError("cannot average zero interval lengths")
    return sum(ci.length for ci in intervals) / len(intervals)
