"""Supplementary experiments beyond the paper's figures.

Two evaluations the paper implies but does not plot, useful for anyone
deploying the system:

* **Tuple-probability interval coverage** — Theorem 1 treats a result
  tuple's membership probability as a one-bin histogram; we measure how
  often the Lemma-1 interval actually covers the *true* satisfaction
  probability of a threshold query, across sample sizes.
* **Confidence-level sweep** — how interval length and miss rate trade
  off as the requested confidence moves through 80/90/95/99%, for the
  mean statistic on road-delay data.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.analytic import mean_interval, tuple_probability_interval
from repro.experiments.harness import render_table
from repro.learning.histogram_learner import HistogramLearner
from repro.workloads.cartel import CarTelSimulator

__all__ = [
    "TupleProbabilityCoverage",
    "run_tuple_probability_coverage",
    "ConfidenceSweep",
    "run_confidence_sweep",
]


@dataclasses.dataclass
class TupleProbabilityCoverage:
    """Coverage and width of result-tuple probability intervals per n."""

    sample_sizes: tuple[int, ...]
    confidence: float
    miss_rates: list[float]
    mean_lengths: list[float]

    def render(self) -> str:
        rows = [
            [n, self.miss_rates[i], self.mean_lengths[i]]
            for i, n in enumerate(self.sample_sizes)
        ]
        return render_table(
            ["n", "miss rate", "mean CI length"],
            rows,
            title=(
                "Supplementary: tuple-probability interval coverage "
                f"({self.confidence * 100:.0f}% CIs)"
            ),
        )


def run_tuple_probability_coverage(
    seed: int = 0,
    sample_sizes: Sequence[int] = (10, 20, 40, 80),
    trials: int = 200,
    confidence: float = 0.9,
) -> TupleProbabilityCoverage:
    """Coverage of Theorem 1's one-bin-histogram probability intervals.

    Per trial: learn a road's delay histogram from n observations,
    compute P[delay > threshold] from it, wrap that in a Lemma-1
    interval, and check whether the interval covers the road's *true*
    threshold probability (from the segment's closed-form lognormal).
    """
    rng = np.random.default_rng(seed)
    sim = CarTelSimulator(60, seed=seed)
    segments = sim.pick_segments(min(trials, 60))
    miss_rates: list[float] = []
    mean_lengths: list[float] = []

    for n in sample_sizes:
        misses = 0
        total_length = 0.0
        count = 0
        for trial in range(trials):
            segment_id = segments[trial % len(segments)]
            threshold = sim.true_mean(segment_id)  # P[X > mean] varies
            # True probability from a large fresh sample of the segment.
            reference = sim.observations(segment_id, 20_000)
            true_p = float(np.mean(reference > threshold))

            sample = sim.observations(segment_id, n)
            learned = HistogramLearner(bucket_count=8).learn(sample)
            p_hat = learned.distribution.prob_greater(threshold)
            interval = tuple_probability_interval(
                p_hat, n, confidence
            ).interval
            misses += not interval.contains(true_p)
            total_length += interval.length
            count += 1
        miss_rates.append(misses / count)
        mean_lengths.append(total_length / count)

    return TupleProbabilityCoverage(
        tuple(sample_sizes), confidence, miss_rates, mean_lengths
    )


@dataclasses.dataclass
class ConfidenceSweep:
    """Interval length / miss rate trade-off across confidence levels."""

    confidences: tuple[float, ...]
    n: int
    miss_rates: list[float]
    mean_lengths: list[float]

    def render(self) -> str:
        rows = [
            [c, self.miss_rates[i], self.mean_lengths[i]]
            for i, c in enumerate(self.confidences)
        ]
        return render_table(
            ["confidence", "miss rate", "mean CI length"],
            rows,
            title=(
                "Supplementary: confidence level vs length/miss "
                f"(mean statistic, n={self.n})"
            ),
        )


def run_confidence_sweep(
    seed: int = 0,
    confidences: Sequence[float] = (0.8, 0.9, 0.95, 0.99),
    n: int = 20,
    trials: int = 300,
) -> ConfidenceSweep:
    """The requested-confidence dial on road-delay mean intervals."""
    rng = np.random.default_rng(seed)
    sim = CarTelSimulator(60, seed=seed)
    segments = sim.pick_segments(40)

    miss_rates: list[float] = []
    mean_lengths: list[float] = []
    for confidence in confidences:
        misses = 0
        total_length = 0.0
        for trial in range(trials):
            segment_id = segments[trial % len(segments)]
            true_mean = sim.true_mean(segment_id)
            sample = sim.observations(segment_id, n)
            interval = mean_interval(
                float(sample.mean()), float(sample.std(ddof=1)),
                n, confidence,
            )
            misses += not interval.contains(true_mean)
            total_length += interval.length
        miss_rates.append(misses / trials)
        mean_lengths.append(total_length / trials)

    return ConfidenceSweep(
        tuple(confidences), n, miss_rates, mean_lengths
    )
