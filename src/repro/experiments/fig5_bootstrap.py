"""Figures 5(a)-5(b): bootstrap versus analytical accuracy (§V-C).

Per query we

1. draw per-leaf samples from the *true* input distributions (sizes are
   heterogeneous), learn empirical input distributions from them,
2. evaluate the query by Monte Carlo, producing the output value sequence
   (m = r * n values for d.f. sample size n, Lemma 3),
3. compute analytic intervals (Theorem 1 on the result distribution) and
   bootstrap intervals (BOOTSTRAP-ACCURACY-INFO on the value sequence),
4. compare interval lengths (ratio bootstrap / analytic, per statistic)
   and check bootstrap miss rates against ground truth from a large
   Monte-Carlo evaluation with the true input distributions.

Two workloads run, as in the paper: total-delay route queries on the
road-delay data, and random six-operator expressions over the five
synthetic families.  Figure 5(b) repeats the comparison with
normal-only inputs and operators limited to + and −, where the result is
exactly Gaussian and the analytic normality assumption holds.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.adaptive import adaptive_bootstrap_from_values
from repro.core.analytic import (
    histogram_accuracy,
    mean_interval,
    variance_interval,
)
from repro.core.bootstrap import bootstrap_accuracy_info
from repro.core.dfsample import DfSized
from repro.distributions.empirical import EmpiricalDistribution
from repro.experiments.fig4 import STATISTICS
from repro.experiments.harness import render_table
from repro.learning.histogram_learner import equi_width_edges
from repro.query.expressions import EvalContext, Expression
from repro.streams.tuples import UncertainTuple
from repro.workloads.cartel import CarTelSimulator
from repro.workloads.queries import RandomQueryWorkload
from repro.workloads.routes import Route, make_routes
from repro.workloads.synthetic import make_distribution

__all__ = ["Fig5abResult", "run_fig5a", "run_fig5b"]

# Number of de-facto resamples r (m = r * n MC values per query).
_RESAMPLES = 100


@dataclasses.dataclass
class Fig5abResult:
    """Average bootstrap/analytic length ratios and bootstrap miss rates."""

    label: str
    confidence: float
    length_ratio: dict[str, float]  # statistic -> bootstrap/analytic ratio
    bootstrap_miss: dict[str, float]
    analytic_miss: dict[str, float]
    queries: int
    # Fraction of the fixed Monte-Carlo budget the bootstrap actually
    # consumed: 1.0 for the fixed-budget kernel, < 1.0 when a width
    # target lets the adaptive path stop early.
    draw_fraction: float = 1.0

    def render(self) -> str:
        rows = [
            [
                stat,
                self.length_ratio[stat],
                self.bootstrap_miss[stat],
                self.analytic_miss[stat],
            ]
            for stat in STATISTICS
        ]
        return render_table(
            ["statistic", "len ratio (boot/analytic)", "boot miss",
             "analytic miss"],
            rows,
            title=(
                f"{self.label} ({self.confidence * 100:.0f}% CIs, "
                f"{self.queries} queries)"
            ),
        )


@dataclasses.dataclass
class _Accumulator:
    ratio_sum: dict[str, float] = dataclasses.field(
        default_factory=lambda: {s: 0.0 for s in STATISTICS}
    )
    ratio_cnt: dict[str, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in STATISTICS}
    )
    boot_miss: dict[str, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in STATISTICS}
    )
    analytic_miss: dict[str, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in STATISTICS}
    )
    miss_cnt: dict[str, int] = dataclasses.field(
        default_factory=lambda: {s: 0 for s in STATISTICS}
    )
    draws_used: int = 0
    draws_budget: int = 0

    def add_ratio(
        self, statistic: str, analytic_length: float, bootstrap_length: float
    ) -> None:
        if analytic_length > 0:
            self.ratio_sum[statistic] += bootstrap_length / analytic_length
            self.ratio_cnt[statistic] += 1

    def add_miss(
        self, statistic: str, analytic_missed: bool, bootstrap_missed: bool
    ) -> None:
        self.boot_miss[statistic] += bootstrap_missed
        self.analytic_miss[statistic] += analytic_missed
        self.miss_cnt[statistic] += 1

    def add_draws(self, used: int, budget: int) -> None:
        self.draws_used += used
        self.draws_budget += budget

    def result(self, label: str, confidence: float, queries: int
               ) -> Fig5abResult:
        return Fig5abResult(
            draw_fraction=(
                self.draws_used / self.draws_budget
                if self.draws_budget else 1.0
            ),
            label=label,
            confidence=confidence,
            length_ratio={
                s: self.ratio_sum[s] / max(self.ratio_cnt[s], 1)
                for s in STATISTICS
            },
            bootstrap_miss={
                s: self.boot_miss[s] / max(self.miss_cnt[s], 1)
                for s in STATISTICS
            },
            analytic_miss={
                s: self.analytic_miss[s] / max(self.miss_cnt[s], 1)
                for s in STATISTICS
            },
            queries=queries,
        )


def _mc_values(
    expression: Expression,
    tup: UncertainTuple,
    rng: np.random.Generator,
    m: int,
) -> np.ndarray:
    """m Monte-Carlo values of the expression over the tuple's inputs."""
    ctx = EvalContext(tup, rng, mc_samples=m)
    result = expression.evaluate(ctx)
    dist = result.distribution
    if isinstance(dist, EmpiricalDistribution) and dist.size >= m:
        return dist.values[:m]
    return dist.sample(rng, m)


def _moments_converge(truth_values: np.ndarray) -> bool:
    """Whether the true mean/variance of the result are well-defined.

    Division by a zero-crossing operand (e.g. a normal denominator) gives
    a result with *infinite* variance; no finite interval can cover it and
    the comparison is ill-posed.  We detect divergence with a split-half
    stability check on the truth sample's variance: if the two halves
    disagree wildly, the second moment has not converged and the query is
    excluded from the mean/variance metrics (bin heights, which are always
    well-defined, are still compared).
    """
    half = truth_values.size // 2
    if half < 2:
        return False
    v1 = float(truth_values[:half].var(ddof=1))
    v2 = float(truth_values[half:].var(ddof=1))
    if v1 <= 0.0 or v2 <= 0.0:
        return True
    ratio = max(v1, v2) / min(v1, v2)
    # A factor-20 disagreement between halves of a 20k-draw truth sample
    # only happens when the second moment diverges; moderately heavy
    # tails (where the bootstrap's robustness shines) are kept.
    return ratio < 20.0


def _compare_one(
    acc: _Accumulator,
    values: np.ndarray,
    n: int,
    truth_values: np.ndarray,
    confidence: float,
    bucket_count: int,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
) -> None:
    """Compare analytic vs bootstrap intervals for one query's output."""
    edges = equi_width_edges(values, bucket_count)
    true_counts, _ = np.histogram(
        np.clip(truth_values, edges[0], edges[-1]), bins=edges
    )
    true_heights = true_counts / true_counts.sum()
    true_mean = float(truth_values.mean())
    true_var = float(truth_values.var(ddof=1))

    # Analytic (Theorem 1): statistics of the result distribution, d.f. n.
    result_mean = float(values.mean())
    result_s2 = float(values.var(ddof=1))
    a_mean = mean_interval(result_mean, np.sqrt(result_s2), n, confidence)
    a_var = variance_interval(result_s2, n, confidence)
    counts, _ = np.histogram(np.clip(values, edges[0], edges[-1]), bins=edges)
    from repro.distributions.histogram import HistogramDistribution

    histogram = HistogramDistribution.from_counts(edges, counts)
    a_bins = histogram_accuracy(histogram, n, confidence)

    # Bootstrap (BOOTSTRAP-ACCURACY-INFO) on the same value sequence —
    # consuming only an early-stopping prefix when a width target is set.
    if target_ci_width is not None or target_relative_width is not None:
        boot = adaptive_bootstrap_from_values(
            values,
            n,
            confidence,
            target_ci_width=target_ci_width,
            target_relative_width=target_relative_width,
            edges=edges,
        )
    else:
        boot = bootstrap_accuracy_info(values, n, confidence, edges)
    acc.add_draws(boot.draws_used, values.size)

    # Length ratios are truth-free and compare over every query; miss
    # rates only make sense when the true moments are well-defined.
    acc.add_ratio("mean", a_mean.length, boot.mean.length)
    acc.add_ratio("variance", a_var.length, boot.variance.length)
    if _moments_converge(truth_values):
        acc.add_miss(
            "mean",
            not a_mean.contains(true_mean), not boot.mean.contains(true_mean),
        )
        acc.add_miss(
            "variance",
            not a_var.contains(true_var), not boot.variance.contains(true_var),
        )
    for a_bin, b_bin, truth in zip(a_bins, boot.bins, true_heights):
        acc.add_ratio(
            "bin_heights", a_bin.interval.length, b_bin.interval.length
        )
        acc.add_miss(
            "bin_heights",
            not a_bin.interval.contains(float(truth)),
            not b_bin.interval.contains(float(truth)),
        )


def _route_tuple_and_truth(
    route: Route,
    sim: CarTelSimulator,
    rng: np.random.Generator,
    sizes: tuple[int, ...],
    truth_mc: int,
) -> tuple[np.ndarray, int, np.ndarray]:
    """(MC values of total delay, d.f. n, truth values) for one route."""
    size_map = {
        s: int(rng.choice(sizes)) for s in route.segment_ids
    }
    samples = route.segment_samples(sim, size_map)
    n = min(size_map.values())
    # MC evaluation of the total: resample each segment's empirical
    # distribution independently, m = r * n values (r resamples; the
    # paper wants m large enough for the percentile intervals to
    # converge — r = 100 is comfortably past that point).
    m = _RESAMPLES * n
    total = np.zeros(m)
    for segment_id in route.segment_ids:
        total += rng.choice(samples[segment_id], size=m, replace=True)
    truth = np.zeros(truth_mc)
    for segment_id in route.segment_ids:
        truth += sim.observations(segment_id, truth_mc)
    return total, n, truth


def run_fig5a(
    seed: int = 0,
    n_route_queries: int = 30,
    n_random_queries: int = 30,
    segments_per_route: int = 20,
    confidence: float = 0.9,
    bucket_count: int = 8,
    truth_mc: int = 20000,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
) -> Fig5abResult:
    """Figure 5(a): mixed road-delay + random synthetic queries.

    A width target switches the bootstrap to the adaptive
    early-stopping prefix of each query's Monte-Carlo sequence; the
    result's ``draw_fraction`` reports the consumed share of the fixed
    ``_RESAMPLES`` budget.
    """
    rng = np.random.default_rng(seed)
    acc = _Accumulator()

    sim = CarTelSimulator(max(segments_per_route * 3, 80), seed=seed)
    routes = make_routes(sim, n_route_queries, segments_per_route, rng)
    for route in routes:
        values, n, truth = _route_tuple_and_truth(
            route, sim, rng, (10, 15, 20, 30, 50), truth_mc
        )
        _compare_one(
            acc, values, n, truth, confidence, bucket_count,
            target_ci_width, target_relative_width,
        )

    workload = RandomQueryWorkload(rng, empirical_inputs=True)
    for _ in range(n_random_queries):
        generated = workload.generate()
        n = generated.df_sample_size
        values = _mc_values(generated.expression, generated.tup, rng, _RESAMPLES * n)
        truth_tup = UncertainTuple(
            {
                name: DfSized(
                    _true_leaf_distribution(generated, name), None
                )
                for name in generated.sample_sizes
            }
        )
        truth = _mc_values(generated.expression, truth_tup, rng, truth_mc)
        _compare_one(
            acc, values, n, truth, confidence, bucket_count,
            target_ci_width, target_relative_width,
        )

    return acc.result(
        "Figure 5(a): bootstrap vs analytic, skewed workloads",
        confidence, n_route_queries + n_random_queries,
    )


def _true_leaf_distribution(generated, name):
    """The true family distribution behind a generated leaf column."""
    return make_distribution(generated.families[name])


def run_fig5b(
    seed: int = 0,
    n_queries: int = 60,
    confidence: float = 0.9,
    bucket_count: int = 8,
    truth_mc: int = 20000,
    target_ci_width: float | None = None,
    target_relative_width: float | None = None,
) -> Fig5abResult:
    """Figure 5(b): normal-only inputs, operators limited to + and −."""
    rng = np.random.default_rng(seed)
    acc = _Accumulator()
    workload = RandomQueryWorkload(
        rng, normal_only=True, empirical_inputs=True
    )
    for _ in range(n_queries):
        generated = workload.generate()
        n = generated.df_sample_size
        values = _mc_values(generated.expression, generated.tup, rng, _RESAMPLES * n)
        truth_tup = UncertainTuple(
            {
                name: DfSized(
                    _true_leaf_distribution(generated, name), None
                )
                for name in generated.sample_sizes
            }
        )
        truth = _mc_values(generated.expression, truth_tup, rng, truth_mc)
        _compare_one(
            acc, values, n, truth, confidence, bucket_count,
            target_ci_width, target_relative_width,
        )
    return acc.result(
        "Figure 5(b): bootstrap vs analytic, exactly-normal results",
        confidence, n_queries,
    )
