"""Plain-text rendering helpers for experiment results.

The benchmark harness prints each figure's data as a fixed-width table so
the series the paper plots can be read (and diffed) directly from test
output.  :func:`render_metrics_table` does the same for an observability
registry: one row per instrumented operator with tuple counts,
selectivity, timings, and interval-width telemetry.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs.instrument import operator_rows
from repro.obs.metrics import MetricsRegistry

__all__ = ["render_table", "format_number", "render_metrics_table"]


def format_number(value: object, digits: int = 4) -> str:
    """Compact numeric formatting; non-numbers pass through as str."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10000 or magnitude < 0.001:
        return f"{value:.{digits}g}"
    return f"{value:.{digits}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """A fixed-width text table with one header row.

    ``align`` gives one ``"l"``/``"r"`` per column (default all left);
    right alignment applies to both the header and every cell, keeping
    numeric columns visually comparable.
    """
    str_rows = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if align is None:
        align = ["l"] * len(headers)

    def _pad(cell: str, width: int, mode: str) -> str:
        return cell.rjust(width) if mode == "r" else cell.ljust(width)

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        _pad(h, w, a) for h, w, a in zip(headers, widths, align)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(
                _pad(cell, w, a)
                for cell, w, a in zip(row, widths, align)
            )
        )
    return "\n".join(lines)


def render_metrics_table(
    registry: "MetricsRegistry | dict",
    title: str | None = "Per-stage breakdown",
) -> str:
    """One row per instrumented operator from a metrics registry.

    Columns: operator id, tuples in/out, selectivity (out/in), number of
    ``receive``/``receive_many`` calls, self wall-time (inclusive time
    minus the next stage's — exact for a linear push pipeline), the
    mean emitted confidence-interval width where recorded, and the
    retained state bytes sampled at flush (``memory_metrics``
    operators).
    """
    rows = []
    for row in operator_rows(registry):
        state = row.get("state_bytes")
        rows.append(
            [
                row["operator"],
                row["tuples_in"],
                row["tuples_out"],
                row["selectivity"],
                row["calls"],
                row.get("self_seconds", row["inclusive_seconds"]),
                row.get("interval_width_mean", "-"),
                row.get("sample_size_min", "-"),
                # Only operators that actually reported have the key;
                # never-reporting operators render '-', not 0.
                int(state) if state is not None else "-",
            ]
        )
    return render_table(
        [
            "operator",
            "in",
            "out",
            "sel",
            "calls",
            "self_s",
            "ci_width",
            "min_n",
            "state_B",
        ],
        rows,
        title=title,
        align=["l", "l", "l", "l", "l", "l", "l", "l", "r"],
    )
