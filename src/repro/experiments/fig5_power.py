"""Figures 5(g) and 5(h): power of the coupled significance tests (§V-D).

5(g): coupled mTest(X, ">", c, 0.05, 0.05) with c = (1 + delta) * mu where
mu is the family's true mean and the sample has size 20.  Since
E(X) > c is false, the *correct decisive* answer is FALSE; the paper's
"power" is the fraction of decisive (non-UNSURE) correct answers, which
rises with delta — fastest for the uniform family (tiny variance) and
the Gamma family (largest mean-to-std ratio among the rest), exactly the
paper's observation.

5(h): coupled pTest(X > v, tau, 0.05, 0.05) with v placed at the true
quantile where Pr[X > v] = tau * (1 + delta) (H1 true; correct answer
TRUE), delta = 0.3, sweeping tau.  Because quantile-based decisions are
distribution-free, all five families' power curves rise together.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np
from scipy import stats as sps

from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.predicates import FieldStats, MTest, PTest
from repro.experiments.harness import render_table
from repro.workloads.synthetic import (
    DISTRIBUTION_NAMES,
    make_distribution,
    sample_distribution,
    true_mean,
)

__all__ = ["PowerSweep", "run_fig5g", "run_fig5h"]


@dataclasses.dataclass
class PowerSweep:
    """Empirical power per distribution family per swept parameter value."""

    label: str
    parameter_name: str
    parameter_values: tuple[float, ...]
    power: dict[str, list[float]]  # family -> power per parameter value

    def render(self) -> str:
        headers = [self.parameter_name] + list(self.power)
        rows = []
        for i, value in enumerate(self.parameter_values):
            rows.append(
                [value] + [self.power[family][i] for family in self.power]
            )
        return render_table(headers, rows, title=self.label)


def _family_quantile(name: str, q: float) -> float:
    """Inverse cdf of the named family (normal handled via scipy)."""
    dist = make_distribution(name)
    if hasattr(dist, "quantile"):
        return dist.quantile(q)  # type: ignore[attr-defined]
    return float(
        sps.norm.ppf(q, loc=dist.mean(), scale=dist.std())
    )


def run_fig5g(
    seed: int = 0,
    deltas: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    n: int = 20,
    trials: int = 400,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> PowerSweep:
    """Figure 5(g): power of coupled mTest versus delta."""
    rng = np.random.default_rng(seed)
    power: dict[str, list[float]] = {}
    for family in DISTRIBUTION_NAMES:
        mu = true_mean(family)
        series = []
        for delta in deltas:
            c = (1.0 + delta) * mu
            correct = 0
            for _ in range(trials):
                sample = sample_distribution(family, rng, n)
                field = FieldStats.from_sample(sample)
                outcome = coupled_tests(
                    MTest(field, ">", c, alpha1), alpha1, alpha2
                )
                # H1 (E(X) > c) is false; the correct decisive answer is
                # FALSE.  Power = decisive correct fraction.
                if outcome.value is ThreeValued.FALSE:
                    correct += 1
            series.append(correct / trials)
        power[family] = series
    return PowerSweep(
        "Figure 5(g): power of coupled mTest vs delta (n=20)",
        "delta", tuple(deltas), power,
    )


def run_fig5h(
    seed: int = 0,
    taus: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    delta: float = 0.3,
    n: int = 20,
    trials: int = 400,
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> PowerSweep:
    """Figure 5(h): power of coupled pTest versus tau (delta = 0.3)."""
    rng = np.random.default_rng(seed)
    power: dict[str, list[float]] = {}
    for family in DISTRIBUTION_NAMES:
        series = []
        for tau in taus:
            true_p = tau * (1.0 + delta)
            if not 0.0 < true_p < 1.0:
                series.append(float("nan"))
                continue
            # v such that Pr[X > v] = true_p, i.e. the (1 - true_p) quantile.
            v = _family_quantile(family, 1.0 - true_p)
            correct = 0
            for _ in range(trials):
                sample = sample_distribution(family, rng, n)
                p_hat = float(np.mean(sample > v))
                outcome = coupled_tests(
                    PTest(p_hat, n, tau, ">", alpha1), alpha1, alpha2
                )
                # H1 (Pr > tau) is true; power = fraction answering TRUE.
                if outcome.value is ThreeValued.TRUE:
                    correct += 1
            series.append(correct / trials)
        power[family] = series
    return PowerSweep(
        f"Figure 5(h): power of coupled pTest vs tau (delta={delta}, n={n})",
        "tau", tuple(taus), power,
    )
