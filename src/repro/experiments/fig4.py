"""Figures 4(a)-4(d): accuracy information via analytical methods (§V-B).

Setup per the paper: pick 100 road segments that have large samples
(>= 600 observations); treat the distribution learned from the complete
sample as the segment's *true* distribution; then learn distributions
from small sub-samples (drawn uniformly without replacement) and check
the resulting 90% confidence intervals against the true values.

* 4(a): sample size n vs the interval length of the mean.
* 4(b): n vs interval lengths of bin heights / mean / variance,
  normalised by the n = 10 length.
* 4(c): n vs miss rates for the three statistics.
* 4(d): miss rates at n = 20 for the five synthetic families, averaged
  over the three statistics.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.analytic import (
    histogram_accuracy,
    mean_interval,
    variance_interval,
)
from repro.experiments.harness import render_table
from repro.learning.histogram_learner import HistogramLearner, equi_width_edges
from repro.workloads.cartel import CarTelSimulator
from repro.workloads.synthetic import (
    DISTRIBUTION_NAMES,
    make_distribution,
    sample_distribution,
)

__all__ = ["Fig4Sweep", "Fig4dResult", "run_fig4", "run_fig4d"]

STATISTICS = ("bin_heights", "mean", "variance")


@dataclasses.dataclass
class _SegmentTruth:
    """Ground truth derived from a segment's complete (large) sample."""

    full_sample: np.ndarray
    edges: np.ndarray
    true_mean: float
    true_variance: float
    true_heights: np.ndarray


@dataclasses.dataclass
class Fig4Sweep:
    """Results of the n-sweep shared by Figures 4(a), 4(b), 4(c)."""

    sample_sizes: tuple[int, ...]
    confidence: float
    # average interval lengths per statistic per n
    lengths: dict[str, list[float]]
    # miss rates per statistic per n
    miss_rates: dict[str, list[float]]

    def mu_lengths(self) -> list[float]:
        """Figure 4(a): average CI length of the mean per n."""
        return self.lengths["mean"]

    def normalized_lengths(self) -> dict[str, list[float]]:
        """Figure 4(b): lengths normalised by the first (n=10) value."""
        normalized = {}
        for stat, series in self.lengths.items():
            base = series[0] if series and series[0] > 0 else 1.0
            normalized[stat] = [value / base for value in series]
        return normalized

    def render(self) -> str:
        normalized = self.normalized_lengths()
        rows = []
        for i, n in enumerate(self.sample_sizes):
            rows.append(
                [
                    n,
                    self.lengths["mean"][i],
                    normalized["bin_heights"][i],
                    normalized["mean"][i],
                    normalized["variance"][i],
                    self.miss_rates["bin_heights"][i],
                    self.miss_rates["mean"][i],
                    self.miss_rates["variance"][i],
                ]
            )
        return render_table(
            [
                "n", "len(mu)", "norm(bins)", "norm(mean)", "norm(var)",
                "miss(bins)", "miss(mean)", "miss(var)",
            ],
            rows,
            title=(
                "Figures 4(a)-(c): analytic interval lengths and miss rates "
                f"({self.confidence * 100:.0f}% CIs, road-delay data)"
            ),
        )


def _segment_truth(
    sim: CarTelSimulator,
    segment_id: int,
    true_sample_size: int,
    bucket_count: int,
) -> _SegmentTruth:
    full = sim.observations(segment_id, true_sample_size)
    edges = equi_width_edges(full, bucket_count)
    counts, _ = np.histogram(np.clip(full, edges[0], edges[-1]), bins=edges)
    heights = counts / counts.sum()
    return _SegmentTruth(
        full_sample=full,
        edges=edges,
        true_mean=float(full.mean()),
        true_variance=float(full.var(ddof=1)),
        true_heights=heights,
    )


def run_fig4(
    seed: int = 0,
    n_segments: int = 100,
    sample_sizes: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80),
    confidence: float = 0.9,
    true_sample_size: int = 600,
    bucket_count: int = 8,
) -> Fig4Sweep:
    """The shared sweep behind Figures 4(a), 4(b), and 4(c)."""
    rng = np.random.default_rng(seed)
    sim = CarTelSimulator(max(n_segments * 2, 50), seed=seed)
    segment_ids = sim.pick_segments(n_segments)
    truths = {
        s: _segment_truth(sim, s, true_sample_size, bucket_count)
        for s in segment_ids
    }

    lengths: dict[str, list[float]] = {stat: [] for stat in STATISTICS}
    misses: dict[str, list[float]] = {stat: [] for stat in STATISTICS}

    for n in sample_sizes:
        length_acc = {stat: 0.0 for stat in STATISTICS}
        length_cnt = {stat: 0 for stat in STATISTICS}
        miss_acc = {stat: 0 for stat in STATISTICS}
        miss_cnt = {stat: 0 for stat in STATISTICS}

        for segment_id in segment_ids:
            truth = truths[segment_id]
            sub = rng.choice(truth.full_sample, size=n, replace=False)
            learner = HistogramLearner(edges=truth.edges)
            learned = learner.learn(sub)

            # Bin heights (Lemma 1).
            assert hasattr(learned.distribution, "probabilities")
            bins = histogram_accuracy(
                learned.distribution, n, confidence  # type: ignore[arg-type]
            )
            for bin_interval, true_height in zip(bins, truth.true_heights):
                ci = bin_interval.interval
                length_acc["bin_heights"] += ci.length
                length_cnt["bin_heights"] += 1
                miss_acc["bin_heights"] += not ci.contains(float(true_height))
                miss_cnt["bin_heights"] += 1

            # Mean and variance (Lemma 2) from the raw sub-sample.
            sub_mean = float(sub.mean())
            sub_s2 = float(sub.var(ddof=1))
            ci_mean = mean_interval(sub_mean, np.sqrt(sub_s2), n, confidence)
            ci_var = variance_interval(sub_s2, n, confidence)
            length_acc["mean"] += ci_mean.length
            length_cnt["mean"] += 1
            miss_acc["mean"] += not ci_mean.contains(truth.true_mean)
            miss_cnt["mean"] += 1
            length_acc["variance"] += ci_var.length
            length_cnt["variance"] += 1
            miss_acc["variance"] += not ci_var.contains(truth.true_variance)
            miss_cnt["variance"] += 1

        for stat in STATISTICS:
            lengths[stat].append(length_acc[stat] / length_cnt[stat])
            misses[stat].append(miss_acc[stat] / miss_cnt[stat])

    return Fig4Sweep(
        sample_sizes=tuple(sample_sizes),
        confidence=confidence,
        lengths=lengths,
        miss_rates=misses,
    )


@dataclasses.dataclass
class Fig4dResult:
    """Figure 4(d): average miss rate per synthetic distribution family."""

    n: int
    confidence: float
    miss_rates: dict[str, float]  # family -> averaged miss rate
    per_statistic: dict[str, dict[str, float]]

    def render(self) -> str:
        rows = [
            [
                family,
                self.miss_rates[family],
                self.per_statistic[family]["bin_heights"],
                self.per_statistic[family]["mean"],
                self.per_statistic[family]["variance"],
            ]
            for family in self.miss_rates
        ]
        return render_table(
            ["distribution", "avg miss", "miss(bins)", "miss(mean)",
             "miss(var)"],
            rows,
            title=(
                f"Figure 4(d): miss rates at n={self.n} "
                f"({self.confidence * 100:.0f}% CIs, synthetic data)"
            ),
        )


def run_fig4d(
    seed: int = 0,
    n: int = 20,
    trials: int = 200,
    confidence: float = 0.9,
    bucket_count: int = 8,
    true_sample_size: int = 20000,
) -> Fig4dResult:
    """Figure 4(d): miss rates across the five distribution families."""
    rng = np.random.default_rng(seed)
    miss_rates: dict[str, float] = {}
    per_statistic: dict[str, dict[str, float]] = {}

    for family in DISTRIBUTION_NAMES:
        dist = make_distribution(family)
        true_mean = dist.mean()
        true_variance = dist.variance()
        # Shared bucketisation from a large reference sample; its
        # per-bucket probabilities are the true bin heights.
        reference = sample_distribution(family, rng, true_sample_size)
        edges = equi_width_edges(reference, bucket_count)
        counts, _ = np.histogram(
            np.clip(reference, edges[0], edges[-1]), bins=edges
        )
        true_heights = counts / counts.sum()

        stat_misses = {stat: 0 for stat in STATISTICS}
        stat_counts = {stat: 0 for stat in STATISTICS}
        learner = HistogramLearner(edges=edges)
        for _ in range(trials):
            sample = sample_distribution(family, rng, n)
            learned = learner.learn(sample)
            bins = histogram_accuracy(
                learned.distribution, n, confidence  # type: ignore[arg-type]
            )
            for bin_interval, truth in zip(bins, true_heights):
                stat_misses["bin_heights"] += (
                    not bin_interval.interval.contains(float(truth))
                )
                stat_counts["bin_heights"] += 1
            s2 = float(sample.var(ddof=1))
            ci_mean = mean_interval(
                float(sample.mean()), np.sqrt(s2), n, confidence
            )
            ci_var = variance_interval(s2, n, confidence)
            stat_misses["mean"] += not ci_mean.contains(true_mean)
            stat_counts["mean"] += 1
            stat_misses["variance"] += not ci_var.contains(true_variance)
            stat_counts["variance"] += 1

        rates = {
            stat: stat_misses[stat] / stat_counts[stat]
            for stat in STATISTICS
        }
        per_statistic[family] = rates
        # Average over *intervals* (the paper's "average miss rates for
        # the intervals over three kinds of statistics"): the b bin
        # intervals weigh b times the single mean/variance intervals.
        miss_rates[family] = sum(stat_misses.values()) / sum(
            stat_counts.values()
        )

    return Fig4dResult(
        n=n,
        confidence=confidence,
        miss_rates=miss_rates,
        per_statistic=per_statistic,
    )
