"""Figures 5(d) and 5(e): error rates of significance predicates (§V-D).

Per the paper: 100 pairs of routes with intentionally close true mean
delays; 200 comparisons per sample size.  In the first 100 the pair is
oriented so H0 is actually true (E(X) <= E(Y), predicate "E(X) > E(Y)"):
any positive answer is a false positive.  In the second 100 the pair is
flipped so H1 is true: any negative answer is a false negative.  The
baseline "without significance predicates" simply compares the two
sample means, as prior accuracy-oblivious systems would.

* 5(d): a single (uncoupled) mdTest at alpha = 0.05 — false positives
  bounded, false negatives uncontrolled.
* 5(e): COUPLED-TESTS with alpha1 = alpha2 = 0.05 — both error kinds
  bounded, plus an UNSURE count that falls with the sample size.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.predicates import FieldStats, MdTest
from repro.experiments.harness import render_table
from repro.workloads.cartel import CarTelSimulator
from repro.workloads.routes import Route, RoutePair, make_close_mean_pairs

__all__ = ["PredicateErrorSweep", "run_fig5d", "run_fig5e"]


@dataclasses.dataclass
class PredicateErrorSweep:
    """Counts per sample size over 2 x n_pairs comparisons."""

    label: str
    sample_sizes: tuple[int, ...]
    n_pairs: int
    false_positives: list[int]
    false_negatives: list[int]
    unsure: list[int] | None
    baseline_errors: list[int]  # errors without significance predicates

    def render(self) -> str:
        headers = ["n", "false pos", "false neg"]
        if self.unsure is not None:
            headers.append("unsure")
        headers.append("errors w/o sig. pred.")
        rows = []
        for i, n in enumerate(self.sample_sizes):
            row: list[object] = [
                n, self.false_positives[i], self.false_negatives[i]
            ]
            if self.unsure is not None:
                row.append(self.unsure[i])
            row.append(self.baseline_errors[i])
            rows.append(row)
        return render_table(
            headers, rows,
            title=f"{self.label} ({2 * self.n_pairs} comparisons per n)",
        )


def _route_field(
    route: Route, sim: CarTelSimulator, n: int
) -> FieldStats:
    """FieldStats of a route's total delay from a fresh d.f. sample."""
    samples = route.segment_samples(sim, n)
    df_sample = Route.total_delay_df_sample(samples)
    return FieldStats.from_sample(df_sample)


def _run_predicate_sweep(
    label: str,
    coupled: bool,
    seed: int,
    n_pairs: int,
    sample_sizes: Sequence[int],
    alpha1: float,
    alpha2: float,
) -> PredicateErrorSweep:
    rng = np.random.default_rng(seed)
    sim = CarTelSimulator(200, seed=seed)
    # A 5% mean gap over 20 noisy lognormal segments puts the Welch
    # effect size right in the interesting regime: indecisive at n=10,
    # mostly decisive by n=80 (the paper's "close means" situation).
    pairs: list[RoutePair] = make_close_mean_pairs(
        sim, n_pairs, segments_per_route=20, relative_gap=0.05, rng=rng
    )

    false_positives: list[int] = []
    false_negatives: list[int] = []
    unsure: list[int] = []
    baseline_errors: list[int] = []

    for n in sample_sizes:
        fp = fn = uns = base_err = 0
        for pair in pairs:
            low = _route_field(pair.route_x, sim, n)   # smaller true mean
            high = _route_field(pair.route_y, sim, n)  # larger true mean

            # H0 true: predicate E(X) > E(Y) with X = low, Y = high.
            predicate = MdTest(low, high, ">", 0.0, alpha1)
            if coupled:
                decision = coupled_tests(predicate, alpha1, alpha2).value
                if decision is ThreeValued.TRUE:
                    fp += 1
                elif decision is ThreeValued.UNSURE:
                    uns += 1
            else:
                if predicate.run().reject:
                    fp += 1
            if low.mean > high.mean:  # accuracy-oblivious baseline
                base_err += 1

            # H1 true: predicate E(X) > E(Y) with X = high, Y = low.
            predicate = MdTest(high, low, ">", 0.0, alpha1)
            if coupled:
                decision = coupled_tests(predicate, alpha1, alpha2).value
                if decision is ThreeValued.FALSE:
                    fn += 1
                elif decision is ThreeValued.UNSURE:
                    uns += 1
            else:
                if not predicate.run().reject:
                    fn += 1
            if high.mean <= low.mean:
                base_err += 1

        false_positives.append(fp)
        false_negatives.append(fn)
        unsure.append(uns)
        baseline_errors.append(base_err)

    return PredicateErrorSweep(
        label=label,
        sample_sizes=tuple(sample_sizes),
        n_pairs=n_pairs,
        false_positives=false_positives,
        false_negatives=false_negatives,
        unsure=unsure if coupled else None,
        baseline_errors=baseline_errors,
    )


def run_fig5d(
    seed: int = 0,
    n_pairs: int = 100,
    sample_sizes: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80),
    alpha: float = 0.05,
) -> PredicateErrorSweep:
    """Figure 5(d): single mdTest — FP bounded, FN uncontrolled."""
    return _run_predicate_sweep(
        "Figure 5(d): single significance predicate (mdTest, alpha=0.05)",
        coupled=False, seed=seed, n_pairs=n_pairs,
        sample_sizes=sample_sizes, alpha1=alpha, alpha2=alpha,
    )


def run_fig5e(
    seed: int = 0,
    n_pairs: int = 100,
    sample_sizes: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80),
    alpha1: float = 0.05,
    alpha2: float = 0.05,
) -> PredicateErrorSweep:
    """Figure 5(e): COUPLED-TESTS — both error kinds bounded + UNSURE."""
    return _run_predicate_sweep(
        "Figure 5(e): coupled tests (alpha1=alpha2=0.05)",
        coupled=True, seed=seed, n_pairs=n_pairs,
        sample_sizes=sample_sizes, alpha1=alpha1, alpha2=alpha2,
    )
