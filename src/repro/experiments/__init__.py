"""Experiment harnesses — one module per paper figure group (§V).

Every module exposes ``run_*`` functions returning plain result
dataclasses with a ``render()`` method that prints the same rows/series
the corresponding paper figure reports.  The benchmarks in
``benchmarks/`` call these and assert the qualitative shape.
"""

from repro.experiments.metrics import interval_miss, miss_rate, mean_length
from repro.experiments.harness import render_table

__all__ = ["interval_miss", "miss_rate", "mean_length", "render_table"]
