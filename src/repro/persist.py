"""JSON persistence for distributions, tuples, and database streams.

A stream database restarts; its learned state should survive.  This
module round-trips every distribution type, :class:`DfSized` values,
uncertain tuples, and whole :class:`StreamDatabase` instances through a
plain-JSON representation (human-inspectable, versioned with a format
tag so future layouts can migrate).
"""

from __future__ import annotations

import json
import math
import pathlib
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.base import Deterministic, Distribution
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import ReproError
from repro.learning.kde_learner import KdeDistribution
from repro.streams.tuples import UncertainTuple

__all__ = [
    "distribution_to_dict",
    "distribution_from_dict",
    "tuple_to_dict",
    "tuple_from_dict",
    "save_database",
    "load_database",
]

FORMAT_VERSION = 1

# RFC 8259 JSON has no NaN/Infinity literals; json.dumps would emit the
# non-standard tokens ``NaN``/``Infinity`` (unreadable by strict parsers,
# and NaN breaks round-trip equality checks).  Non-finite floats are
# persisted as these sentinel strings instead, and ``save_database``
# passes ``allow_nan=False`` so any non-finite value that slips past the
# encoders raises instead of silently producing invalid JSON.
_FLOAT_SENTINELS = {"NaN": math.nan, "Infinity": math.inf,
                    "-Infinity": -math.inf}


def _encode_float(value: float) -> "float | str":
    """A float as a JSON-safe value (sentinel string when non-finite)."""
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "NaN"
    return "Infinity" if value > 0 else "-Infinity"


def _decode_float(value: object) -> float:
    """Inverse of :func:`_encode_float`."""
    if isinstance(value, str):
        try:
            return _FLOAT_SENTINELS[value]
        except KeyError:
            raise ReproError(
                f"invalid serialised float {value!r}; expected a number or "
                f"one of {sorted(_FLOAT_SENTINELS)}"
            ) from None
    return float(value)  # type: ignore[arg-type]


def _encode_floats(values: "Sequence[float] | np.ndarray") -> list:
    return [_encode_float(v) for v in values]


def _decode_floats(values: object) -> list[float]:
    return [_decode_float(v) for v in values]  # type: ignore[union-attr]


def distribution_to_dict(dist: Distribution) -> dict[str, object]:
    """Serialise any built-in distribution to plain JSON types."""
    if isinstance(dist, Deterministic):
        return {"type": "deterministic", "value": _encode_float(dist.value)}
    if isinstance(dist, GaussianDistribution):
        return {
            "type": "gaussian",
            "mu": _encode_float(dist.mu),
            "sigma2": _encode_float(dist.sigma2),
        }
    if isinstance(dist, HistogramDistribution):
        return {
            "type": "histogram",
            "edges": _encode_floats(dist.edges),
            "probabilities": _encode_floats(dist.probabilities),
        }
    if isinstance(dist, EmpiricalDistribution):
        return {"type": "empirical", "values": _encode_floats(dist.values)}
    if isinstance(dist, DiscreteDistribution):
        return {
            "type": "discrete",
            "support": _encode_floats(dist.support),
            "probabilities": _encode_floats(dist.probabilities),
        }
    if isinstance(dist, UniformDistribution):
        return {
            "type": "uniform",
            "low": _encode_float(dist.low),
            "high": _encode_float(dist.high),
        }
    if isinstance(dist, ExponentialDistribution):
        return {"type": "exponential", "lam": _encode_float(dist.lam)}
    if isinstance(dist, GammaDistribution):
        return {
            "type": "gamma",
            "k": _encode_float(dist.k),
            "theta": _encode_float(dist.theta),
        }
    if isinstance(dist, WeibullDistribution):
        return {
            "type": "weibull",
            "lam": _encode_float(dist.lam),
            "k": _encode_float(dist.k),
        }
    if isinstance(dist, KdeDistribution):
        return {
            "type": "kde",
            "points": _encode_floats(dist.points),
            "bandwidth": _encode_float(dist.bandwidth),
        }
    if isinstance(dist, MixtureDistribution):
        return {
            "type": "mixture",
            "components": [
                distribution_to_dict(c) for c in dist.components
            ],
            "weights": _encode_floats(dist.weights),
        }
    raise ReproError(
        f"cannot serialise distribution type {type(dist).__name__}"
    )


def distribution_from_dict(data: Mapping[str, object]) -> Distribution:
    """Inverse of :func:`distribution_to_dict`."""
    kind = data.get("type")
    if kind == "deterministic":
        return Deterministic(_decode_float(data["value"]))
    if kind == "gaussian":
        return GaussianDistribution(
            _decode_float(data["mu"]), _decode_float(data["sigma2"])
        )
    if kind == "histogram":
        return HistogramDistribution(
            _decode_floats(data["edges"]),
            _decode_floats(data["probabilities"]),
        )
    if kind == "empirical":
        return EmpiricalDistribution(_decode_floats(data["values"]))
    if kind == "discrete":
        return DiscreteDistribution(
            _decode_floats(data["support"]),
            _decode_floats(data["probabilities"]),
        )
    if kind == "uniform":
        return UniformDistribution(
            _decode_float(data["low"]), _decode_float(data["high"])
        )
    if kind == "exponential":
        return ExponentialDistribution(_decode_float(data["lam"]))
    if kind == "gamma":
        return GammaDistribution(
            _decode_float(data["k"]), _decode_float(data["theta"])
        )
    if kind == "weibull":
        return WeibullDistribution(
            _decode_float(data["lam"]), _decode_float(data["k"])
        )
    if kind == "kde":
        return KdeDistribution(
            np.asarray(_decode_floats(data["points"]), dtype=float),
            _decode_float(data["bandwidth"]),
        )
    if kind == "mixture":
        return MixtureDistribution(
            [distribution_from_dict(c) for c in data["components"]],  # type: ignore[union-attr]
            _decode_floats(data["weights"]),
        )
    raise ReproError(f"unknown serialised distribution type {kind!r}")


def _value_to_dict(value: object) -> dict[str, object]:
    if isinstance(value, DfSized):
        return {
            "kind": "dfsized",
            "distribution": distribution_to_dict(value.distribution),
            "sample_size": value.sample_size,
        }
    if isinstance(value, Distribution):
        return {
            "kind": "distribution",
            "distribution": distribution_to_dict(value),
        }
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return {"kind": "number", "value": _encode_float(value)}
    if isinstance(value, str):
        return {"kind": "text", "value": value}
    raise ReproError(
        f"cannot serialise attribute of type {type(value).__name__}"
    )


def _value_from_dict(data: Mapping[str, object]) -> object:
    kind = data.get("kind")
    if kind == "dfsized":
        size = data["sample_size"]
        return DfSized(
            distribution_from_dict(data["distribution"]),  # type: ignore[arg-type]
            None if size is None else int(size),  # type: ignore[arg-type]
        )
    if kind == "distribution":
        return distribution_from_dict(data["distribution"])  # type: ignore[arg-type]
    if kind == "number":
        return _decode_float(data["value"])
    if kind == "text":
        return str(data["value"])
    raise ReproError(f"unknown serialised value kind {kind!r}")


def tuple_to_dict(tup: UncertainTuple) -> dict[str, object]:
    """Serialise one uncertain tuple."""
    return {
        "attributes": {
            name: _value_to_dict(value)
            for name, value in tup.attributes.items()
        },
        "probability": tup.probability,
        "timestamp": (
            None if tup.timestamp is None else _encode_float(tup.timestamp)
        ),
    }


def tuple_from_dict(data: Mapping[str, object]) -> UncertainTuple:
    """Inverse of :func:`tuple_to_dict`."""
    attributes = {
        name: _value_from_dict(value)
        for name, value in data["attributes"].items()  # type: ignore[union-attr]
    }
    timestamp = data.get("timestamp")
    return UncertainTuple(
        attributes,
        probability=float(data.get("probability", 1.0)),  # type: ignore[arg-type]
        timestamp=None if timestamp is None else _decode_float(timestamp),
    )


def save_database(db: StreamDatabase, path: "str | pathlib.Path") -> None:
    """Write every stream's buffered tuples to a JSON file.

    Continuous queries are runtime registrations (they hold callbacks)
    and are intentionally not persisted.
    """
    payload = {
        "format": FORMAT_VERSION,
        "streams": {
            name: [tuple_to_dict(t) for t in db._streams[name].tuples]
            for name in db.streams()
        },
    }
    # allow_nan=False: every non-finite float must have gone through the
    # sentinel encoding above; a raw NaN/Infinity reaching the serialiser
    # is a bug and raises here instead of writing non-standard JSON.
    pathlib.Path(path).write_text(json.dumps(payload, allow_nan=False))


def load_database(
    path: "str | pathlib.Path",
    db: StreamDatabase | None = None,
) -> StreamDatabase:
    """Rebuild a database (or populate an existing one) from a JSON file.

    The whole file is parsed and validated into memory *before* any
    stream is created or any tuple inserted, so a malformed or truncated
    file never leaves a passed-in ``db`` half-populated: either the load
    succeeds completely or the target database is untouched.
    """
    text = pathlib.Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"database file {str(path)!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, Mapping):
        raise ReproError(
            f"database file must hold a JSON object, got "
            f"{type(payload).__name__}"
        )
    if payload.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported database file format {payload.get('format')!r}"
        )
    streams = payload.get("streams")
    if not isinstance(streams, Mapping):
        raise ReproError("database file has no 'streams' object")

    # Phase 1: parse everything (no mutation of the target database).
    parsed: list[tuple[str, list[UncertainTuple]]] = []
    for name, tuples in streams.items():
        if not isinstance(tuples, list):
            raise ReproError(
                f"stream {name!r} must hold a list of tuples, got "
                f"{type(tuples).__name__}"
            )
        decoded: list[UncertainTuple] = []
        for index, data in enumerate(tuples):
            try:
                decoded.append(tuple_from_dict(data))
            except ReproError as exc:
                raise ReproError(
                    f"invalid tuple #{index} in stream {name!r}: {exc}"
                ) from exc
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise ReproError(
                    f"malformed tuple #{index} in stream {name!r}: {exc!r}"
                ) from exc
        parsed.append((name, decoded))

    if db is None:
        db = StreamDatabase()
    # Phase 2: validate against any declared schemas of existing streams,
    # still before mutating anything.
    for name, decoded in parsed:
        state = db._streams.get(name)
        if state is not None and state.schema is not None:
            for tup in decoded:
                state.schema.validate(tup)
    # Phase 3: commit.
    for name, decoded in parsed:
        if name not in db.streams():
            db.create_stream(name)
        for tup in decoded:
            db.insert(name, tup)
    return db
