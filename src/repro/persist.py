"""JSON persistence for distributions, tuples, and database streams.

A stream database restarts; its learned state should survive.  This
module round-trips every distribution type, :class:`DfSized` values,
uncertain tuples, and whole :class:`StreamDatabase` instances through a
plain-JSON representation (human-inspectable, versioned with a format
tag so future layouts can migrate).
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Mapping

import numpy as np

from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.base import Deterministic, Distribution
from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import ReproError
from repro.learning.kde_learner import KdeDistribution
from repro.streams.tuples import UncertainTuple

__all__ = [
    "distribution_to_dict",
    "distribution_from_dict",
    "tuple_to_dict",
    "tuple_from_dict",
    "save_database",
    "load_database",
]

FORMAT_VERSION = 1


def distribution_to_dict(dist: Distribution) -> dict[str, object]:
    """Serialise any built-in distribution to plain JSON types."""
    if isinstance(dist, Deterministic):
        return {"type": "deterministic", "value": dist.value}
    if isinstance(dist, GaussianDistribution):
        return {"type": "gaussian", "mu": dist.mu, "sigma2": dist.sigma2}
    if isinstance(dist, HistogramDistribution):
        return {
            "type": "histogram",
            "edges": dist.edges.tolist(),
            "probabilities": dist.probabilities.tolist(),
        }
    if isinstance(dist, EmpiricalDistribution):
        return {"type": "empirical", "values": dist.values.tolist()}
    if isinstance(dist, DiscreteDistribution):
        return {
            "type": "discrete",
            "support": dist.support.tolist(),
            "probabilities": dist.probabilities.tolist(),
        }
    if isinstance(dist, UniformDistribution):
        return {"type": "uniform", "low": dist.low, "high": dist.high}
    if isinstance(dist, ExponentialDistribution):
        return {"type": "exponential", "lam": dist.lam}
    if isinstance(dist, GammaDistribution):
        return {"type": "gamma", "k": dist.k, "theta": dist.theta}
    if isinstance(dist, WeibullDistribution):
        return {"type": "weibull", "lam": dist.lam, "k": dist.k}
    if isinstance(dist, KdeDistribution):
        return {
            "type": "kde",
            "points": dist.points.tolist(),
            "bandwidth": dist.bandwidth,
        }
    if isinstance(dist, MixtureDistribution):
        return {
            "type": "mixture",
            "components": [
                distribution_to_dict(c) for c in dist.components
            ],
            "weights": dist.weights.tolist(),
        }
    raise ReproError(
        f"cannot serialise distribution type {type(dist).__name__}"
    )


def distribution_from_dict(data: Mapping[str, object]) -> Distribution:
    """Inverse of :func:`distribution_to_dict`."""
    kind = data.get("type")
    if kind == "deterministic":
        return Deterministic(float(data["value"]))  # type: ignore[arg-type]
    if kind == "gaussian":
        return GaussianDistribution(
            float(data["mu"]), float(data["sigma2"])  # type: ignore[arg-type]
        )
    if kind == "histogram":
        return HistogramDistribution(
            data["edges"], data["probabilities"]  # type: ignore[arg-type]
        )
    if kind == "empirical":
        return EmpiricalDistribution(data["values"])  # type: ignore[arg-type]
    if kind == "discrete":
        return DiscreteDistribution(
            data["support"], data["probabilities"]  # type: ignore[arg-type]
        )
    if kind == "uniform":
        return UniformDistribution(
            float(data["low"]), float(data["high"])  # type: ignore[arg-type]
        )
    if kind == "exponential":
        return ExponentialDistribution(float(data["lam"]))  # type: ignore[arg-type]
    if kind == "gamma":
        return GammaDistribution(
            float(data["k"]), float(data["theta"])  # type: ignore[arg-type]
        )
    if kind == "weibull":
        return WeibullDistribution(
            float(data["lam"]), float(data["k"])  # type: ignore[arg-type]
        )
    if kind == "kde":
        return KdeDistribution(
            np.asarray(data["points"], dtype=float),  # type: ignore[arg-type]
            float(data["bandwidth"]),  # type: ignore[arg-type]
        )
    if kind == "mixture":
        return MixtureDistribution(
            [distribution_from_dict(c) for c in data["components"]],  # type: ignore[union-attr]
            data["weights"],  # type: ignore[arg-type]
        )
    raise ReproError(f"unknown serialised distribution type {kind!r}")


def _value_to_dict(value: object) -> dict[str, object]:
    if isinstance(value, DfSized):
        return {
            "kind": "dfsized",
            "distribution": distribution_to_dict(value.distribution),
            "sample_size": value.sample_size,
        }
    if isinstance(value, Distribution):
        return {
            "kind": "distribution",
            "distribution": distribution_to_dict(value),
        }
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return {"kind": "number", "value": float(value)}
    if isinstance(value, str):
        return {"kind": "text", "value": value}
    raise ReproError(
        f"cannot serialise attribute of type {type(value).__name__}"
    )


def _value_from_dict(data: Mapping[str, object]) -> object:
    kind = data.get("kind")
    if kind == "dfsized":
        size = data["sample_size"]
        return DfSized(
            distribution_from_dict(data["distribution"]),  # type: ignore[arg-type]
            None if size is None else int(size),  # type: ignore[arg-type]
        )
    if kind == "distribution":
        return distribution_from_dict(data["distribution"])  # type: ignore[arg-type]
    if kind == "number":
        return float(data["value"])  # type: ignore[arg-type]
    if kind == "text":
        return str(data["value"])
    raise ReproError(f"unknown serialised value kind {kind!r}")


def tuple_to_dict(tup: UncertainTuple) -> dict[str, object]:
    """Serialise one uncertain tuple."""
    return {
        "attributes": {
            name: _value_to_dict(value)
            for name, value in tup.attributes.items()
        },
        "probability": tup.probability,
        "timestamp": tup.timestamp,
    }


def tuple_from_dict(data: Mapping[str, object]) -> UncertainTuple:
    """Inverse of :func:`tuple_to_dict`."""
    attributes = {
        name: _value_from_dict(value)
        for name, value in data["attributes"].items()  # type: ignore[union-attr]
    }
    timestamp = data.get("timestamp")
    return UncertainTuple(
        attributes,
        probability=float(data.get("probability", 1.0)),  # type: ignore[arg-type]
        timestamp=None if timestamp is None else float(timestamp),  # type: ignore[arg-type]
    )


def save_database(db: StreamDatabase, path: "str | pathlib.Path") -> None:
    """Write every stream's buffered tuples to a JSON file.

    Continuous queries are runtime registrations (they hold callbacks)
    and are intentionally not persisted.
    """
    payload = {
        "format": FORMAT_VERSION,
        "streams": {
            name: [tuple_to_dict(t) for t in db._streams[name].tuples]
            for name in db.streams()
        },
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_database(
    path: "str | pathlib.Path",
    db: StreamDatabase | None = None,
) -> StreamDatabase:
    """Rebuild a database (or populate an existing one) from a JSON file."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported database file format {payload.get('format')!r}"
        )
    if db is None:
        db = StreamDatabase()
    for name, tuples in payload["streams"].items():
        if name not in db.streams():
            db.create_stream(name)
        for data in tuples:
            db.insert(name, tuple_from_dict(data))
    return db
