"""Routes over the road network and close-mean route pairs (§V-C, §V-D).

A route is a sequence of road segments; its total delay is the sum of the
per-segment delays.  Figure 5(a) queries total route delays (about 20
segments per route, heterogeneous sample sizes); Figures 5(d)/(e) compare
100 *pairs of routes whose true mean delays are intentionally close*,
which makes small-sample comparisons genuinely hard.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.workloads.cartel import CarTelSimulator

__all__ = ["Route", "RoutePair", "make_routes", "make_close_mean_pairs"]


@dataclasses.dataclass(frozen=True)
class Route:
    """An ordered sequence of distinct road segments."""

    route_id: int
    segment_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.segment_ids:
            raise ReproError("route needs at least one segment")
        if len(set(self.segment_ids)) != len(self.segment_ids):
            raise ReproError("route segments must be distinct")

    def true_mean(self, sim: CarTelSimulator) -> float:
        """True expected total delay: sum of segment delay means."""
        return sum(sim.true_mean(s) for s in self.segment_ids)

    def true_variance(self, sim: CarTelSimulator) -> float:
        """True total-delay variance (independent segments)."""
        return sum(sim.true_variance(s) for s in self.segment_ids)

    def segment_samples(
        self, sim: CarTelSimulator, sizes: "Mapping[int, int] | int"
    ) -> dict[int, np.ndarray]:
        """Fresh iid delay samples per segment.

        ``sizes`` is either one size for every segment or a mapping
        segment id -> size (the heterogeneous-sample-size situation).
        """
        if isinstance(sizes, int):
            return {
                s: sim.observations(s, sizes) for s in self.segment_ids
            }
        return {
            s: sim.observations(s, int(sizes[s])) for s in self.segment_ids
        }

    @staticmethod
    def total_delay_df_sample(
        samples: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """A de facto sample of the route's total delay (Definition 2).

        Per Lemma 3 the d.f. sample size is the minimum per-segment size;
        each d.f. observation sums one observation from every segment.
        """
        if not samples:
            raise ReproError("no segment samples given")
        n = min(arr.size for arr in samples.values())
        if n < 1:
            raise ReproError("every segment needs at least one observation")
        return np.sum(
            [np.asarray(arr)[:n] for arr in samples.values()], axis=0
        )


@dataclasses.dataclass(frozen=True)
class RoutePair:
    """Two routes with close true mean delays; ``gap`` = mean_y − mean_x."""

    route_x: Route
    route_y: Route
    mean_x: float
    mean_y: float

    @property
    def gap(self) -> float:
        return self.mean_y - self.mean_x


def make_routes(
    sim: CarTelSimulator,
    n_routes: int,
    segments_per_route: int = 20,
    rng: np.random.Generator | None = None,
) -> list[Route]:
    """Random routes of the given length over the simulator's network."""
    if rng is None:
        rng = np.random.default_rng()
    ids = sim.segment_ids()
    if segments_per_route > len(ids):
        raise ReproError(
            f"routes of {segments_per_route} segments need a network with "
            f">= that many segments ({len(ids)} available)"
        )
    routes = []
    for route_id in range(n_routes):
        chosen = rng.choice(ids, size=segments_per_route, replace=False)
        routes.append(Route(route_id, tuple(int(s) for s in chosen)))
    return routes


def _best_swap(
    segment_means: dict[int, float],
    route_segments: Sequence[int],
    candidates: Sequence[int],
    target_gap: float,
) -> tuple[int, int]:
    """The (out, in) segment swap whose mean shift is closest to target."""
    best: tuple[int, int] | None = None
    best_error = float("inf")
    for out_segment in route_segments:
        out_mean = segment_means[out_segment]
        for in_segment in candidates:
            shift = segment_means[in_segment] - out_mean
            if shift <= 0:
                continue
            error = abs(shift - target_gap)
            if error < best_error:
                best_error = error
                best = (out_segment, in_segment)
    if best is None:
        raise ReproError(
            "could not construct a close-mean pair; the network has no "
            "segment swap with a positive mean shift"
        )
    return best


def make_close_mean_pairs(
    sim: CarTelSimulator,
    n_pairs: int,
    segments_per_route: int = 20,
    relative_gap: float = 0.02,
    rng: np.random.Generator | None = None,
) -> list[RoutePair]:
    """Route pairs whose true total-delay means differ by ~relative_gap.

    Route Y shares all but one segment with route X; the swapped segment
    is chosen so the total mean shifts as close as possible to
    ``relative_gap * mean(X)`` — with mean(Y) > mean(X) by construction,
    so callers can orient each comparison to make H0 or H1 true (§V-D).
    """
    if rng is None:
        rng = np.random.default_rng()
    if not 0.0 < relative_gap < 1.0:
        raise ReproError(
            f"relative gap must be in (0,1), got {relative_gap}"
        )
    ids = sim.segment_ids()
    segment_means = {s: sim.true_mean(s) for s in ids}
    pairs = []
    for pair_id in range(n_pairs):
        chosen = rng.choice(ids, size=segments_per_route, replace=False)
        segments_x = tuple(int(s) for s in chosen)
        outside = [s for s in ids if s not in set(segments_x)]
        candidate_count = min(len(outside), 60)
        candidates = rng.choice(outside, size=candidate_count, replace=False)
        mean_x = sum(segment_means[s] for s in segments_x)
        out_segment, in_segment = _best_swap(
            segment_means, segments_x, [int(c) for c in candidates],
            relative_gap * mean_x,
        )
        segments_y = tuple(
            in_segment if s == out_segment else s for s in segments_x
        )
        route_x = Route(2 * pair_id, segments_x)
        route_y = Route(2 * pair_id + 1, segments_y)
        pairs.append(
            RoutePair(
                route_x, route_y, mean_x,
                sum(segment_means[s] for s in segments_y),
            )
        )
    return pairs
