"""The five synthetic distribution families of §V-A.

The paper generates synthetic data with R for: exponential (λ = 1),
Gamma (k = 2, θ = 2), normal (μ = 1, σ² = 1), uniform (0, 1), and
Weibull (λ = 1, k = 1).  We mirror those exact parameterisations with
numpy/scipy (DESIGN.md §5 records the R → numpy substitution).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.gaussian import GaussianDistribution
from repro.distributions.parametric import (
    ExponentialDistribution,
    GammaDistribution,
    UniformDistribution,
    WeibullDistribution,
)
from repro.errors import ReproError

__all__ = [
    "DISTRIBUTION_NAMES",
    "make_distribution",
    "sample_distribution",
    "true_mean",
    "true_variance",
]

DISTRIBUTION_NAMES = ("exponential", "gamma", "normal", "uniform", "weibull")


def make_distribution(name: str) -> Distribution:
    """The paper's parameterisation of the named family."""
    if name == "exponential":
        return ExponentialDistribution(lam=1.0)
    if name == "gamma":
        return GammaDistribution(k=2.0, theta=2.0)
    if name == "normal":
        return GaussianDistribution(mu=1.0, sigma2=1.0)
    if name == "uniform":
        return UniformDistribution(0.0, 1.0)
    if name == "weibull":
        return WeibullDistribution(lam=1.0, k=1.0)
    raise ReproError(
        f"unknown distribution {name!r}; expected one of {DISTRIBUTION_NAMES}"
    )


def sample_distribution(
    name: str, rng: np.random.Generator, size: int
) -> np.ndarray:
    """iid observations of the named family."""
    return make_distribution(name).sample(rng, size)


def true_mean(name: str) -> float:
    """Closed-form expectation of the named family."""
    return make_distribution(name).mean()


def true_variance(name: str) -> float:
    """Closed-form variance of the named family."""
    return make_distribution(name).variance()
