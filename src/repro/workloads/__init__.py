"""Workload and dataset generators for the experiments (paper §V-A).

* :mod:`repro.workloads.cartel` — a road-delay trace simulator standing in
  for the CarTel Boston dataset (see DESIGN.md §5 for the substitution
  rationale).
* :mod:`repro.workloads.synthetic` — the five R-generated distribution
  families: exponential, Gamma, normal, uniform, Weibull.
* :mod:`repro.workloads.queries` — the random query/expression generator
  over the six operators of §V-C.
* :mod:`repro.workloads.routes` — routes (~20 segments) and close-mean
  route pairs for the significance-predicate experiments (§V-D).
"""

from repro.workloads.cartel import CarTelSimulator, SegmentSpec, RawReport
from repro.workloads.synthetic import (
    DISTRIBUTION_NAMES,
    make_distribution,
    sample_distribution,
    true_mean,
    true_variance,
)
from repro.workloads.queries import random_expression, RandomQueryWorkload
from repro.workloads.routes import Route, make_routes, make_close_mean_pairs

__all__ = [
    "CarTelSimulator",
    "SegmentSpec",
    "RawReport",
    "DISTRIBUTION_NAMES",
    "make_distribution",
    "sample_distribution",
    "true_mean",
    "true_variance",
    "random_expression",
    "RandomQueryWorkload",
    "Route",
    "make_routes",
    "make_close_mean_pairs",
]
