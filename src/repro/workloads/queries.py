"""Random query generation (paper §V-C).

The paper generates random query expressions by assigning equal
probabilities to six operators — ``+ - * / SQRT(ABS(.)) SQUARE`` — over
operands drawn from the five synthetic distribution families.  This module
builds such expressions as :mod:`repro.query.expressions` ASTs, together
with the input tuple that binds each leaf column to a learned
distribution, so an expression can be executed exactly like a user query.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.dfsample import DfSized
from repro.errors import ReproError
from repro.learning.base import LearnedDistribution
from repro.learning.empirical_learner import EmpiricalLearner
from repro.learning.gaussian_learner import GaussianLearner
from repro.query.expressions import BinaryOp, Column, Expression, UnaryOp
from repro.streams.tuples import UncertainTuple
from repro.workloads.synthetic import DISTRIBUTION_NAMES, sample_distribution

__all__ = ["random_expression", "RandomQueryWorkload", "GeneratedQuery"]

_BINARY = ("+", "-", "*", "/")
_UNARY = ("sqrtabs", "square")
# Equal probability across the six operators; a draw below 4/6 picks a
# binary operator, otherwise a unary one.
_BINARY_SHARE = len(_BINARY) / (len(_BINARY) + len(_UNARY))


def random_expression(
    rng: np.random.Generator,
    columns: list[str],
    operator_count: int = 3,
    binary_only: bool = False,
) -> Expression:
    """A random expression with ``operator_count`` operators over columns.

    Each operator is drawn with equal probability from the six of §V-C
    (or from ``{+, -}`` when ``binary_only`` — the Figure 5(b) setting).
    Columns are recycled when the expression needs more leaves than there
    are columns.
    """
    if not columns:
        raise ReproError("need at least one column")
    if operator_count < 0:
        raise ReproError(f"operator count must be >= 0, got {operator_count}")

    leaves = [Column(name) for name in columns]
    rng.shuffle(leaves)  # type: ignore[arg-type]
    pool: list[Expression] = list(leaves)
    next_leaf = 0

    def take_operand() -> Expression:
        nonlocal next_leaf
        if pool:
            return pool.pop()
        node = Column(columns[next_leaf % len(columns)])
        next_leaf += 1
        return node

    current: Expression = take_operand()
    for _ in range(operator_count):
        if binary_only:
            op = "+" if rng.random() < 0.5 else "-"
            current = BinaryOp(op, current, take_operand())
        elif rng.random() < _BINARY_SHARE:
            op = str(rng.choice(_BINARY))
            current = BinaryOp(op, current, take_operand())
        else:
            op = str(rng.choice(_UNARY))
            current = UnaryOp(op, current)
    return current


@dataclasses.dataclass(frozen=True)
class GeneratedQuery:
    """A random expression plus the tuple binding its leaf columns."""

    expression: Expression
    tup: UncertainTuple
    learned: dict[str, LearnedDistribution]
    sample_sizes: dict[str, int]
    families: dict[str, str]

    @property
    def df_sample_size(self) -> int:
        """Lemma 3: the minimum leaf sample size."""
        return min(self.sample_sizes.values())


class RandomQueryWorkload:
    """Generates random (expression, input tuple) pairs.

    ``normal_only`` restricts the inputs to the normal family and the
    operators to ``{+, -}`` — the Figure 5(b) configuration where the
    result is exactly Gaussian.  ``empirical_inputs`` keeps leaves as
    sample-backed empirical distributions (the Monte-Carlo processing
    category); otherwise Gaussians are learned from each leaf sample.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        column_count: int = 3,
        operator_count: int = 3,
        sample_sizes: tuple[int, ...] = (10, 15, 20, 30, 50),
        normal_only: bool = False,
        empirical_inputs: bool = True,
    ) -> None:
        if column_count < 1:
            raise ReproError(f"need >= 1 column, got {column_count}")
        self.rng = rng
        self.column_count = column_count
        self.operator_count = operator_count
        self.sample_sizes = sample_sizes
        self.normal_only = normal_only
        self.learner = (
            EmpiricalLearner() if empirical_inputs else GaussianLearner()
        )

    def generate(self) -> GeneratedQuery:
        columns = [f"x{i}" for i in range(self.column_count)]
        expression = random_expression(
            self.rng, columns, self.operator_count,
            binary_only=self.normal_only,
        )
        attributes: dict[str, object] = {}
        learned: dict[str, LearnedDistribution] = {}
        sizes: dict[str, int] = {}
        families: dict[str, str] = {}
        for name in columns:
            family = (
                "normal" if self.normal_only
                else str(self.rng.choice(DISTRIBUTION_NAMES))
            )
            n = int(self.rng.choice(self.sample_sizes))
            sample = sample_distribution(family, self.rng, n)
            fitted = self.learner.learn(sample)
            learned[name] = fitted
            sizes[name] = n
            families[name] = family
            attributes[name] = DfSized(fitted.distribution, n)
        tup = UncertainTuple(attributes)
        return GeneratedQuery(expression, tup, learned, sizes, families)
