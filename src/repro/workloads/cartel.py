"""CarTel-style road-delay trace simulator.

The paper's real dataset consists of traffic-delay measurements on Boston
road segments collected by 28 instrumented taxis.  We do not have that
dataset; this simulator produces a synthetic equivalent exercising the
same code paths (DESIGN.md §5):

* many road segments with heterogeneous *skewed* delay distributions —
  per-segment lognormal delays, whose skew is exactly what separates
  bootstrap from analytical intervals in Figure 5(a);
* heterogeneous sample sizes — busy segments receive many taxi reports,
  quiet ones few (Example 1's three-observations-versus-fifty situation);
* enough observations per chosen segment (>= 600) to define a "true"
  distribution, as the experiments in §V-B require;
* raw report records shaped like Figure 1 (segment, length, time, delay,
  speed limit) for the stream-ingestion examples.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterator

import numpy as np

from repro.errors import ReproError

__all__ = ["SegmentSpec", "RawReport", "CarTelSimulator"]


@dataclasses.dataclass(frozen=True)
class SegmentSpec:
    """Static properties of one road segment.

    Delays on the segment are lognormal: ``exp(N(log_mu, log_sigma^2))``,
    multiplied by the network's diurnal congestion factor at report time
    (see :meth:`CarTelSimulator.congestion_factor`).
    """

    segment_id: int
    length_m: float
    speed_limit: float
    log_mu: float
    log_sigma: float
    report_rate: float  # mean reports per time window (Poisson)

    def mean_delay(self) -> float:
        """Expected delay in seconds (lognormal mean), off-peak."""
        return math.exp(self.log_mu + self.log_sigma**2 / 2.0)

    def delay_variance(self) -> float:
        """Delay variance (lognormal variance), off-peak."""
        s2 = self.log_sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.log_mu + s2)


@dataclasses.dataclass(frozen=True)
class RawReport:
    """One raw observation record, shaped like the paper's Figure 1."""

    segment_id: int
    length_m: float
    minute: int  # minutes since the window start
    delay: float
    speed_limit: float

    def as_record(self) -> dict[str, object]:
        return {
            "segment_id": self.segment_id,
            "length": self.length_m,
            "minute": self.minute,
            "delay": self.delay,
            "speed_limit": self.speed_limit,
        }


class CarTelSimulator:
    """Generates road segments, delay observations, and report streams."""

    def __init__(self, n_segments: int = 200, seed: int | None = None) -> None:
        if n_segments < 1:
            raise ReproError(f"need >= 1 segment, got {n_segments}")
        self._rng = np.random.default_rng(seed)
        self.segments: dict[int, SegmentSpec] = {}
        for segment_id in range(n_segments):
            self.segments[segment_id] = self._make_segment(segment_id)

    def _make_segment(self, segment_id: int) -> SegmentSpec:
        rng = self._rng
        length = float(rng.uniform(80.0, 1500.0))
        speed_limit = float(rng.choice([25.0, 30.0, 40.0, 55.0]))
        # Typical traversal takes length/speed plus congestion; target
        # mean delays of roughly 20-200 seconds with realistic spread.
        base = length / (speed_limit * 0.44704)  # m / (mph -> m/s)
        log_mu = math.log(base * rng.uniform(1.1, 2.5))
        log_sigma = float(rng.uniform(0.25, 0.7))
        # Busy arterials see many taxi reports, side streets very few.
        report_rate = float(rng.lognormal(mean=2.0, sigma=1.0))
        return SegmentSpec(
            segment_id, length, speed_limit, log_mu, log_sigma, report_rate
        )

    # -- observation sampling --------------------------------------------------

    def segment_ids(self) -> list[int]:
        return sorted(self.segments)

    def spec(self, segment_id: int) -> SegmentSpec:
        try:
            return self.segments[segment_id]
        except KeyError:
            raise ReproError(f"no segment {segment_id}") from None

    @staticmethod
    def congestion_factor(hour: float) -> float:
        """Diurnal congestion multiplier for an hour of day in [0, 24).

        A smooth double-peaked profile: ~1.0 off-peak, rising to ~1.6 at
        the 8:30 and 17:30 rush hours — the shape traffic-delay traces
        exhibit (and the reason Example 1 needs *fresh* samples).
        """
        hour = float(hour) % 24.0
        morning = math.exp(-((hour - 8.5) ** 2) / (2 * 1.5**2))
        evening = math.exp(-((hour - 17.5) ** 2) / (2 * 1.8**2))
        return 1.0 + 0.6 * max(morning, evening)

    def observations(
        self, segment_id: int, count: int, hour: float | None = None
    ) -> np.ndarray:
        """iid delay observations (seconds) for one segment.

        ``hour`` applies the diurnal congestion multiplier; omitted means
        off-peak conditions (factor 1.0), which is what the accuracy
        experiments use so their "true distribution" is stationary.
        """
        if count < 1:
            raise ReproError(f"need >= 1 observation, got {count}")
        spec = self.spec(segment_id)
        delays = self._rng.lognormal(spec.log_mu, spec.log_sigma, count)
        if hour is not None:
            delays = delays * self.congestion_factor(hour)
        return delays

    def true_mean(self, segment_id: int) -> float:
        return self.spec(segment_id).mean_delay()

    def true_variance(self, segment_id: int) -> float:
        return self.spec(segment_id).delay_variance()

    def pick_segments(self, count: int) -> list[int]:
        """Uniformly pick distinct segments (the experiments' 100 picks)."""
        ids = self.segment_ids()
        if count > len(ids):
            raise ReproError(
                f"asked for {count} segments but only {len(ids)} exist"
            )
        chosen = self._rng.choice(ids, size=count, replace=False)
        return [int(s) for s in chosen]

    # -- raw report stream -------------------------------------------------------

    def report_stream(
        self, window_minutes: int = 10, start_hour: float = 12.0
    ) -> Iterator[RawReport]:
        """Raw reports for one time window, Poisson-many per segment.

        Report counts follow each segment's Poisson rate, so sample sizes
        are heterogeneous exactly as in Example 1; delays are scaled by
        the diurnal congestion factor at each report's minute.
        """
        if window_minutes < 1:
            raise ReproError(
                f"window must be >= 1 minute, got {window_minutes}"
            )
        for segment_id in self.segment_ids():
            spec = self.segments[segment_id]
            count = int(self._rng.poisson(spec.report_rate))
            if count == 0:
                continue
            minutes = self._rng.integers(0, window_minutes, size=count)
            delays = self._rng.lognormal(spec.log_mu, spec.log_sigma, count)
            for minute, delay in zip(minutes, delays):
                factor = self.congestion_factor(
                    start_hour + float(minute) / 60.0
                )
                yield RawReport(
                    segment_id, spec.length_m, int(minute),
                    float(delay) * factor, spec.speed_limit,
                )
