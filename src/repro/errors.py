"""Exception hierarchy for the accuracy-aware uncertain stream database.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class at the system boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DistributionError(ReproError):
    """A distribution was constructed or used with invalid parameters."""


class LearningError(ReproError):
    """A learner was given a sample it cannot learn from (e.g. empty)."""


class AccuracyError(ReproError):
    """Accuracy information could not be computed (e.g. no sample size)."""


class QueryError(ReproError):
    """A query is malformed or references unknown attributes."""


class ParseError(QueryError):
    """The SQL-ish query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class StreamError(ReproError):
    """The stream engine was misconfigured or received bad tuples."""


class CallbackError(ReproError):
    """A continuous-query callback raised during dispatch.

    Dispatch runs every standing query to completion before re-raising
    the first callback failure wrapped in this error, so one faulty
    subscriber cannot starve the queries registered after it.  The
    offending query's name is available as :attr:`query_name` and the
    original exception as ``__cause__``.
    """

    def __init__(self, message: str, query_name: str) -> None:
        super().__init__(message)
        self.query_name = query_name


class ObservabilityError(ReproError):
    """A metric was declared or used inconsistently (name/type clash)."""


class ParallelError(ReproError):
    """The parallel execution subsystem was misconfigured or failed."""


class SchemaError(StreamError):
    """A tuple does not match the schema of the stream it is pushed into."""
