"""Benchmarks reproducing Figures 5(c) and 5(f): throughput impact (§V-C/D).

The paper's absolute numbers came from a C++-era testbed; the *shape* we
assert is:

* 5(c): QP-only is fastest, analytic accuracy costs less than bootstrap
  accuracy (QP > analytic > bootstrap);
* 5(f): all three significance predicates run at the same order of
  magnitude as the no-predicate baseline, i.e. hypothesis testing on
  distribution summaries is cheap relative to query processing.

Both harnesses also measure the batched execution path
(:meth:`Pipeline.run_batched` + the vectorized accuracy kernels) and
assert it beats the per-tuple path by at least 1.5x on the
accuracy-heavy configurations.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig5_throughput import run_fig5c, run_fig5f


def test_fig5c_accuracy_overhead(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5c(seed=3, n_items=4000, repeats=3),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5c", result.render())
    rates = result.throughputs
    assert rates["QP only"] > rates["analytic"]
    assert rates["analytic"] > rates["bootstrap"]
    relative = result.relative()
    # Accuracy computation must not cripple the stream: both methods
    # keep a usable fraction of baseline throughput.
    assert relative["analytic"] > 0.3
    assert relative["bootstrap"] > 0.1
    # The vectorized kernels must pay for themselves on the hot path.
    assert rates["analytic (batched)"] > 1.5 * rates["analytic"]
    assert rates["bootstrap (batched)"] > 1.5 * rates["bootstrap"]


def test_fig5f_predicate_overhead(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5f(seed=3, n_items=4000, repeats=5),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5f", result.render())
    rates = result.throughputs
    relative = result.relative()
    # Best-of-N throughput still jitters under machine load; allow 15%
    # measurement slack on the ordering (the meaningful claim is the
    # bounded overhead below).
    assert rates["no predicate"] >= 0.85 * max(
        rates["mTest"], rates["mdTest"], rates["pTest"]
    )
    for name in ("mTest", "mdTest", "pTest"):
        # Paper: "significance predicates have little overhead".
        assert relative[name] > 0.3, name
    # Batching helps every predicate configuration (looser bar than
    # 5(c): the per-tuple t-test work is not vectorized, only the
    # learning/accuracy stages upstream of it are).
    for name in ("no predicate", "mTest", "mdTest", "pTest"):
        assert rates[f"{name} (batched)"] > rates[name], name


def test_fig5f_predicates_cheaper_than_bootstrap_accuracy(benchmark):
    """Cross-figure shape: predicates cost less than bootstrap accuracy."""
    fig5c = run_fig5c(seed=5, n_items=3000, repeats=3)
    fig5f = run_fig5f(seed=5, n_items=3000, repeats=3)
    result = benchmark.pedantic(
        lambda: (fig5c, fig5f), rounds=1, iterations=1
    )
    fig5c, fig5f = result
    cheapest_predicate = max(
        fig5f.throughputs[name] for name in ("mTest", "mdTest", "pTest")
    )
    assert cheapest_predicate > fig5c.throughputs["bootstrap"]
