"""Benchmarks reproducing Figures 5(c) and 5(f): throughput impact (§V-C/D).

The paper's absolute numbers came from a C++-era testbed; the *shape* we
assert is:

* 5(c): QP-only is fastest, analytic accuracy costs less than bootstrap
  accuracy (QP > analytic > bootstrap);
* 5(f): all three significance predicates run at the same order of
  magnitude as the no-predicate baseline, i.e. hypothesis testing on
  distribution summaries is cheap relative to query processing.

Both harnesses also measure the batched execution path
(:meth:`Pipeline.run_batched` + the vectorized accuracy kernels) and
assert it beats the per-tuple path by at least 1.5x on the
accuracy-heavy configurations.
"""

import json
import pickle

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig5_throughput import (
    N_SHARDS,
    _BootstrapAccuracy,
    _LearnGaussian,
    _make_stream,
    run_fig5c,
    run_fig5f,
)
from repro.parallel import available_cpus
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink, SlidingGaussianAverage

SHARDED_WORKERS = 4


def _bench_records(result, workers):
    """ThroughputResult -> BENCH_fig5.json records.

    Schema: ``{config, path, workers, layout, tuples_per_sec}`` with
    ``path`` in {per-tuple, batched, sharded}, ``workers`` the number of
    processes executing tuples (1 for the single-process paths, never
    null), and ``layout`` the batch representation fed to the engine —
    "tuple" on the per-tuple path, "columnar" on the batched and
    sharded paths (see ``measure_throughput(layout=...)``).
    """
    records = []
    for name, tput in result.throughputs.items():
        if "(sharded" in name:
            config, path, w = name.split(" (sharded")[0], "sharded", workers
        elif name.endswith(" (batched)"):
            config, path, w = name[: -len(" (batched)")], "batched", 1
        else:
            config, path, w = name, "per-tuple", 1
        records.append(
            {
                "config": config,
                "path": path,
                "workers": w,
                "layout": "tuple" if path == "per-tuple" else "columnar",
                "tuples_per_sec": tput,
            }
        )
    return records


def test_fig5c_accuracy_overhead(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5c(seed=3, n_items=4000, repeats=3),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5c", result.render())
    rates = result.throughputs
    assert rates["QP only"] > rates["analytic"]
    assert rates["analytic"] > rates["bootstrap"]
    relative = result.relative()
    # Accuracy computation must not cripple the stream: both methods
    # keep a usable fraction of baseline throughput.
    assert relative["analytic"] > 0.3
    assert relative["bootstrap"] > 0.1
    # The vectorized kernels must pay for themselves on the hot path.
    assert rates["analytic (batched)"] > 1.5 * rates["analytic"]
    assert rates["bootstrap (batched)"] > 1.5 * rates["bootstrap"]


def test_fig5f_predicate_overhead(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5f(seed=3, n_items=4000, repeats=5),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5f", result.render())
    rates = result.throughputs
    relative = result.relative()
    # Best-of-N throughput still jitters under machine load; allow 15%
    # measurement slack on the ordering (the meaningful claim is the
    # bounded overhead below).
    assert rates["no predicate"] >= 0.85 * max(
        rates["mTest"], rates["mdTest"], rates["pTest"]
    )
    for name in ("mTest", "mdTest", "pTest"):
        # Paper: "significance predicates have little overhead".
        assert relative[name] > 0.3, name
    # Batching helps every predicate configuration (looser bar than
    # 5(c): the per-tuple t-test work is not vectorized, only the
    # learning/accuracy stages upstream of it are).
    for name in ("no predicate", "mTest", "mdTest", "pTest"):
        assert rates[f"{name} (batched)"] > rates[name], name


def test_fig5_sharded_throughput(benchmark, results_dir):
    """The headline perf claim: sharded execution beats batched serial.

    Measures Figures 5(c) and 5(f) with the 4-worker process-pool path
    enabled, writes every (configuration, execution path) rate to
    ``benchmarks/results/BENCH_fig5.json``, and — on machines with at
    least 4 CPUs — asserts the sharded path clears 1.5x batched serial
    on the accuracy-heavy configurations.
    """
    workers = SHARDED_WORKERS
    fig5c, fig5f = benchmark.pedantic(
        lambda: (
            run_fig5c(seed=3, n_items=3000, repeats=3, workers=workers),
            run_fig5f(seed=3, n_items=3000, repeats=3, workers=workers),
        ),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5c_sharded", fig5c.render())
    save_result(results_dir, "fig5f_sharded", fig5f.render())
    records = _bench_records(fig5c, workers) + _bench_records(fig5f, workers)
    (results_dir / "BENCH_fig5.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )

    # Schema invariants: every row names its layout and a real worker
    # count (1 for single-process paths, never null).
    rate = {(r["config"], r["path"]): r["tuples_per_sec"] for r in records}
    for r in records:
        expected_layout = "tuple" if r["path"] == "per-tuple" else "columnar"
        assert r["layout"] == expected_layout, r
        assert r["workers"] == (workers if r["path"] == "sharded" else 1), r
        assert r["tuples_per_sec"] > 0, r

    if available_cpus() < workers:
        pytest.skip(
            f"sharded speedup assertion needs >= {workers} CPUs "
            f"(have {available_cpus()}); BENCH_fig5.json written"
        )
    # Columnar transport makes sharding pay on EVERY configuration...
    for config in (
        "QP only", "analytic", "bootstrap",
        "no predicate", "mTest", "mdTest", "pTest",
    ):
        assert rate[(config, "sharded")] > rate[(config, "batched")], config
    # ...and clears 1.5x batched serial on the accuracy-heavy ones.
    for config in (
        "analytic", "bootstrap",
        "no predicate", "mTest", "mdTest", "pTest",
    ):
        assert (
            rate[(config, "sharded")] > 1.5 * rate[(config, "batched")]
        ), config


def _fig5c_bootstrap_collect_pipeline():
    return Pipeline(
        [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", 200),
            _BootstrapAccuracy("avg", seed=0),
            CollectSink(),
        ]
    )


def test_fig5c_sharded_equivalence_across_worker_counts():
    """Fixed seed => identical sink contents at 1, 2, and 4 workers.

    The bootstrap configuration is the adversarial case: its operator is
    stateful AND stochastic, so this exercises the per-shard reseeding
    path end to end.  Tuples are compared by per-element pickle bytes
    (whole-list pickles differ in memoization structure across paths).
    """
    tuples = _make_stream(400, seed=3)

    def run(workers):
        pipeline = _fig5c_bootstrap_collect_pipeline()
        sink = pipeline.run_sharded(
            tuples, n_workers=workers, n_shards=N_SHARDS, seed=3
        )
        return [pickle.dumps(tup) for tup in sink.results]

    baseline = run(1)
    assert len(baseline) == 400
    assert run(2) == baseline
    assert run(4) == baseline


def test_fig5f_predicates_cheaper_than_bootstrap_accuracy(benchmark):
    """Cross-figure shape: predicates cost less than bootstrap accuracy."""
    fig5c = run_fig5c(seed=5, n_items=3000, repeats=3)
    fig5f = run_fig5f(seed=5, n_items=3000, repeats=3)
    result = benchmark.pedantic(
        lambda: (fig5c, fig5f), rounds=1, iterations=1
    )
    fig5c, fig5f = result
    cheapest_predicate = max(
        fig5f.throughputs[name] for name in ("mTest", "mdTest", "pTest")
    )
    assert cheapest_predicate > fig5c.throughputs["bootstrap"]
