"""Benchmarks for the supplementary experiments (beyond the paper's figures)."""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.supplementary import (
    run_confidence_sweep,
    run_tuple_probability_coverage,
)


def test_supplementary_tuple_probability_coverage(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_tuple_probability_coverage(seed=29, trials=150),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "supp_tuple_probability", result.render())
    # Coverage near nominal (90% intervals -> ~10% misses, with the
    # histogram-approximation penalty at small n) and widths falling in n.
    assert all(rate < 0.3 for rate in result.miss_rates)
    assert result.mean_lengths[-1] < result.mean_lengths[0]


def test_supplementary_confidence_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_confidence_sweep(seed=29, trials=300),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "supp_confidence_sweep", result.render())
    # More confidence costs width and buys coverage: lengths rise
    # monotonically, miss rates fall monotonically (modulo MC slack).
    lengths = result.mean_lengths
    assert all(a < b for a, b in zip(lengths, lengths[1:]))
    misses = result.miss_rates
    assert misses[-1] <= misses[0]
    # Miss rates track (1 - confidence) within generous slack.
    for confidence, rate in zip(result.confidences, misses):
        assert rate <= 2.5 * (1 - confidence) + 0.03
