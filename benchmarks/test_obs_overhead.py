"""Disabled-mode observability overhead on the Figure 5(c) workload.

The instrumentation hooks in :class:`Operator` live on the hot path:
every ``receive``/``receive_many``/``emit`` now begins with an ``if
self._obs is None`` check.  The promise in ``docs/OBSERVABILITY.md`` is
that with no registry attached this costs less than 5% of throughput.

This benchmark verifies the promise directly: it measures the analytic
Fig 5(c) configuration twice — once as shipped (hooks present, registry
absent) and once with the hook methods rebound to bare bodies that skip
the check entirely (the pre-observability execution paths) — and
asserts the shipped pipeline keeps >= 95% of the bare throughput.

Runs are interleaved (bare, instrumented, bare, instrumented, ...) and
best-of-N so a load spike hits both variants equally instead of biasing
one side.  ``OBS_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os
import types

from benchmarks.conftest import save_result
from repro.experiments.fig5_throughput import (
    WINDOW_SIZE,
    _AnalyticAccuracy,
    _LearnGaussian,
    _make_stream,
)
from repro.streams.engine import Pipeline
from repro.streams.operators import CountingSink, SlidingGaussianAverage
from repro.streams.throughput import measure_throughput

SMOKE = os.environ.get("OBS_SMOKE", "") not in ("", "0")
N_ITEMS = 2000 if SMOKE else 6000
ROUNDS = 4 if SMOKE else 5
# Measurement attempts: a ratio below the floor re-measures with more
# rounds before failing, so only a *reproducible* regression trips the
# gate rather than a one-off load spike on a shared runner.
ATTEMPTS = 3
MAX_OVERHEAD = 0.05


def _bare_receive(self, tup):
    self.process(tup)


def _bare_receive_many(self, tuples):
    self.process_many(tuples)


def _bare_emit(self, tup):
    if self._downstream is not None:
        self._downstream.receive(tup)


def _bare_emit_many(self, tuples):
    if self._downstream is not None and tuples:
        self._downstream.receive_many(tuples)


def _bare_flush(self):
    self.on_flush()
    if self._downstream is not None:
        self._downstream.flush()


def _strip(pipeline: Pipeline) -> Pipeline:
    """Rebind every hook to its uninstrumented body (pre-PR semantics)."""
    for op in pipeline.operators:
        op.receive = types.MethodType(_bare_receive, op)
        op.receive_many = types.MethodType(_bare_receive_many, op)
        op.emit = types.MethodType(_bare_emit, op)
        op.emit_many = types.MethodType(_bare_emit_many, op)
        op.flush = types.MethodType(_bare_flush, op)
    return pipeline


def _analytic_pipeline() -> Pipeline:
    return Pipeline(
        [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
            _AnalyticAccuracy("avg"),
            CountingSink(),
        ]
    )


def _bare_pipeline() -> Pipeline:
    return _strip(_analytic_pipeline())


def test_disabled_mode_overhead_under_5_percent(benchmark, results_dir):
    tuples = _make_stream(N_ITEMS, seed=11)

    def measure(rounds: int) -> tuple[float, float]:
        bare = 0.0
        instrumented = 0.0
        for _ in range(rounds):
            bare = max(
                bare, measure_throughput(_bare_pipeline, tuples, repeats=1)
            )
            instrumented = max(
                instrumented,
                measure_throughput(_analytic_pipeline, tuples, repeats=1),
            )
        return bare, instrumented

    def measure_until_stable() -> tuple[float, float]:
        measure(1)  # warm caches so neither variant pays the cold start
        bare, instrumented = measure(ROUNDS)
        for attempt in range(1, ATTEMPTS):
            if instrumented / bare >= 1.0 - MAX_OVERHEAD:
                break
            more_bare, more_inst = measure(ROUNDS * (attempt + 1))
            bare = max(bare, more_bare)
            instrumented = max(instrumented, more_inst)
        return bare, instrumented

    bare, instrumented = benchmark.pedantic(
        measure_until_stable, rounds=1, iterations=1
    )
    ratio = instrumented / bare
    save_result(
        results_dir,
        "obs_overhead",
        "Observability disabled-mode overhead (Fig 5(c) analytic)\n"
        f"  bare hooks:         {int(bare):>8} tuples/s\n"
        f"  instrumented (off): {int(instrumented):>8} tuples/s\n"
        f"  ratio:              {ratio:>8.3f} (floor {1 - MAX_OVERHEAD})",
    )
    assert ratio >= 1.0 - MAX_OVERHEAD, (
        f"disabled-mode observability costs {(1 - ratio):.1%} of "
        f"throughput (budget {MAX_OVERHEAD:.0%}): {int(bare)} -> "
        f"{int(instrumented)} tuples/s"
    )


def test_disabled_mode_sink_identical(results_dir):
    """Sanity alongside the timing claim: same tuples reach the sink."""
    tuples = _make_stream(500, seed=12)
    bare = _bare_pipeline()
    instrumented = _analytic_pipeline()
    bare.run(tuples)
    instrumented.run(tuples)
    assert bare.sink.count == instrumented.sink.count
