"""Adaptive early-stopping bootstrap: speedup at equal coverage.

The adaptive bootstrap's value proposition is *distribution
sensitivity*: on a bursty stream where most windows are easy (tight
output distributions) and occasional bursts are hard (wide ones), a
width target matching the fixed budget's width on the HARD class lets
easy tuples stop after the first escalation round while hard tuples run
to the same cap the fixed bootstrap always pays.  The gate asserts the
paper-style bargain is real:

* >= 2x tuples/sec on the batched bootstrap path, and
* empirical coverage of the true mean within +/- 1 percentage point of
  the fixed-budget bootstrap (both sit near 1.0 in this fresh-draw
  regime; see docs/STATISTICS.md).

On a homogeneous stream there is no free lunch — every tuple is the
hard class — which is why the workload here is explicitly bursty.

Results land in ``benchmarks/results/BENCH_adaptive.json``.
"""

import json
import time

import numpy as np

from benchmarks.conftest import save_result
from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.fig5_throughput import _BootstrapAccuracy
from repro.experiments.harness import render_table
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink
from repro.streams.tuples import UncertainTuple

N_ITEMS = 3072
BLOCK = 256
#: Burst positions: two of twelve blocks carry 20x the baseline sigma.
HIGH_BLOCKS = frozenset({4, 9})
SAMPLE_SIZE = 20
CONFIDENCE = 0.9
RESAMPLES = 100  # the fixed budget (r), also the adaptive cap
SIGMA2_LOW, SIGMA2_HIGH = 1.0, 400.0


def _bursty_stream():
    """Bursty tuples plus per-item ground truth (mu, is_burst)."""
    rng = np.random.default_rng(1234)
    tuples, mus, bursts = [], [], []
    for i in range(N_ITEMS):
        burst = (i // BLOCK) in HIGH_BLOCKS
        mu = float(rng.normal(50.0, 5.0))
        tuples.append(
            UncertainTuple(
                {
                    "reading": DfSized(
                        GaussianDistribution(
                            mu, SIGMA2_HIGH if burst else SIGMA2_LOW
                        ),
                        SAMPLE_SIZE,
                    )
                }
            )
        )
        mus.append(mu)
        bursts.append(burst)
    return tuples, np.asarray(mus), np.asarray(bursts)


def _measure(tuples, mus, **stage_kwargs):
    """Run the batched bootstrap stage; return rate/coverage/draws."""
    stage = _BootstrapAccuracy(
        "reading", confidence=CONFIDENCE, resamples=RESAMPLES, seed=7,
        **stage_kwargs,
    )
    pipeline = Pipeline([stage, CollectSink()])
    start = time.perf_counter()
    sink = pipeline.run_batched(tuples, batch_size=BLOCK)
    elapsed = time.perf_counter() - start
    infos = [tup.value("accuracy") for tup in sink.results]
    covered = np.array(
        [info.mean.contains(mu) for info, mu in zip(infos, mus)]
    )
    draws = np.array([info.draws_used for info in infos])
    widths = np.array([info.mean.length for info in infos])
    return {
        "tuples_per_sec": len(tuples) / elapsed,
        "coverage": float(covered.mean()),
        "mean_draws_per_tuple": float(draws.mean()),
        "widths": widths,
    }


def test_adaptive_speedup_at_equal_coverage(benchmark, results_dir):
    tuples, mus, bursts = _bursty_stream()

    def run():
        fixed = _measure(tuples, mus)
        # The width target matches the fixed budget's width on the hard
        # (burst) class: adaptive must do no better than fixed *there*,
        # so any speedup comes purely from the easy class stopping early.
        target = float(np.median(fixed["widths"][bursts]))
        adaptive = _measure(
            tuples, mus,
            target_ci_width=target, initial_resamples=16,
        )
        return fixed, adaptive, target

    fixed, adaptive, target = benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = adaptive["tuples_per_sec"] / fixed["tuples_per_sec"]
    records = [
        {
            "config": name,
            "path": "batched",
            "tuples_per_sec": stats["tuples_per_sec"],
            "coverage": stats["coverage"],
            "mean_draws_per_tuple": stats["mean_draws_per_tuple"],
            "target_ci_width": target if name == "bootstrap adaptive" else None,
        }
        for name, stats in (
            ("bootstrap fixed", fixed),
            ("bootstrap adaptive", adaptive),
        )
    ]
    (results_dir / "BENCH_adaptive.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )
    save_result(
        results_dir, "adaptive_bootstrap",
        render_table(
            ["config", "tuples/s", "coverage", "draws/tuple"],
            [
                [r["config"], r["tuples_per_sec"], r["coverage"],
                 r["mean_draws_per_tuple"]]
                for r in records
            ],
            title=(
                "Adaptive bootstrap vs fixed budget "
                f"(bursty stream, target width {target:.3g})"
            ),
        ),
    )

    # Draw budget: the easy class must actually stop early.
    assert (
        adaptive["mean_draws_per_tuple"]
        < 0.5 * fixed["mean_draws_per_tuple"]
    )
    # The headline gate: >= 2x throughput at equal empirical coverage.
    assert speedup >= 2.0, f"adaptive speedup {speedup:.2f}x < 2x"
    assert abs(adaptive["coverage"] - fixed["coverage"]) <= 0.01, (
        f"coverage drifted: fixed {fixed['coverage']:.4f} vs "
        f"adaptive {adaptive['coverage']:.4f}"
    )
