"""Benchmarks reproducing Figures 5(a)-5(b): bootstrap vs analytic (§V-C).

Shape assertions (see EXPERIMENTS.md for the deviation discussion):

* bin-height and mean intervals from the bootstrap are tighter than the
  analytic ones on both workloads;
* on exactly-normal results (5(b)) the bootstrap is tighter across all
  three statistics, by roughly the paper's ~20-30%;
* bootstrap miss rates stay moderate, and on the skewed workload the
  bootstrap's variance coverage is at least as good as the analytic
  method's (the analytic chi-square interval relies on normality).
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig5_bootstrap import run_fig5a, run_fig5b


def test_fig5a_skewed_workloads(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5a(
            seed=11, n_route_queries=30, n_random_queries=30,
            truth_mc=20_000,
        ),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5a", result.render())

    assert result.length_ratio["bin_heights"] < 0.95
    assert result.length_ratio["mean"] < 1.0
    # Honest-percentile deviation (documented in EXPERIMENTS.md): the
    # bootstrap variance interval is not shorter on heavy-tailed results,
    # but its coverage must not be worse than the analytic interval's.
    assert result.bootstrap_miss["variance"] <= (
        result.analytic_miss["variance"] + 0.05
    )
    assert result.bootstrap_miss["mean"] < 0.3


def test_fig5b_normal_results(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig5b(seed=11, n_queries=60, truth_mc=20_000),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5b", result.render())

    # Paper: with truly normal results the bootstrap advantage is
    # smaller but still present (~20% shorter mean/variance intervals).
    for stat in ("bin_heights", "mean", "variance"):
        assert result.length_ratio[stat] < 1.0, stat
    assert result.length_ratio["mean"] > 0.55
    assert result.bootstrap_miss["mean"] < 0.25
    assert result.bootstrap_miss["variance"] < 0.25


def test_fig5a_vs_fig5b_mean_advantage(benchmark):
    """The mean-interval advantage is at least as large on skewed data."""
    skewed = run_fig5a(
        seed=13, n_route_queries=20, n_random_queries=20, truth_mc=10_000
    )
    normal = run_fig5b(seed=13, n_queries=40, truth_mc=10_000)
    result = benchmark.pedantic(
        lambda: (skewed, normal), rounds=1, iterations=1
    )
    skewed, normal = result
    assert (
        skewed.length_ratio["bin_heights"]
        <= normal.length_ratio["bin_heights"] + 0.1
    )
