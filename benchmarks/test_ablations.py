"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Wald-always vs the paper's dispatch rule vs Wilson-always for bin
  heights (Lemma 1's small-count rule earns its keep);
* the paper's chunked d.f. bootstrap vs the classical single-sample
  bootstrap (coverage and width);
* weighted samples (§VII extension): decayed weights track drift at the
  cost of wider intervals;
* coupled vs single significance tests: what coupling buys.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.core.analytic import (
    proportion_interval_wald,
    proportion_interval_wilson,
    bin_height_interval,
)
from repro.core.bootstrap import (
    bootstrap_accuracy_info,
    classical_bootstrap_accuracy,
)
from repro.core.coupled import ThreeValued, coupled_tests
from repro.core.effective import exponential_weights
from repro.core.predicates import FieldStats, MTest
from repro.experiments.harness import render_table
from repro.learning.weighted import WeightedLearner


def test_ablation_wald_vs_wilson_small_counts(benchmark, results_dir):
    """The paper's dispatch rule fixes Wald's small-count blind spot."""

    def run() -> dict[str, float]:
        rng = np.random.default_rng(31)
        n, p_true, trials = 20, 0.08, 2000  # n*p < 4: the Wilson regime
        misses = {"wald": 0, "paper_rule": 0, "wilson": 0}
        for _ in range(trials):
            p_hat = rng.binomial(n, p_true) / n
            misses["wald"] += not proportion_interval_wald(
                p_hat, n, 0.9
            ).contains(p_true)
            misses["paper_rule"] += not bin_height_interval(
                p_hat, n, 0.9
            ).contains(p_true)
            misses["wilson"] += not proportion_interval_wilson(
                p_hat, n, 0.9
            ).contains(p_true)
        return {k: v / trials for k, v in misses.items()}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_wilson",
        render_table(
            ["estimator", "miss rate"],
            [[k, v] for k, v in rates.items()],
            title="Ablation: proportion interval at n*p < 4 (p=0.08, n=20)",
        ),
    )
    # Wald badly undercovers tiny proportions; the paper's rule (which
    # dispatches on the *observed* count, falling back to Wilson for
    # small ones) repairs that — it covers at least as well as
    # Wilson-always here.
    assert rates["wald"] > rates["paper_rule"] + 0.05
    assert rates["paper_rule"] <= rates["wilson"] + 0.02


def test_ablation_chunked_vs_classical_bootstrap(benchmark, results_dir):
    """The paper's chunked bootstrap vs the classical single-sample one."""

    def run() -> dict[str, dict[str, float]]:
        rng = np.random.default_rng(37)
        n, trials = 20, 400
        stats = {
            "chunked": {"miss": 0.0, "length": 0.0},
            "classical": {"miss": 0.0, "length": 0.0},
        }
        for _ in range(trials):
            sample = rng.exponential(1.0, n)
            values = rng.choice(sample, size=100 * n, replace=True)
            chunked = bootstrap_accuracy_info(values, n, 0.9)
            classical = classical_bootstrap_accuracy(
                sample, rng, 0.9, n_resamples=100
            )
            stats["chunked"]["miss"] += not chunked.mean.contains(1.0)
            stats["chunked"]["length"] += chunked.mean.length
            stats["classical"]["miss"] += not classical.mean.contains(1.0)
            stats["classical"]["length"] += classical.mean.length
        for entry in stats.values():
            entry["miss"] /= trials
            entry["length"] /= trials
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_bootstrap",
        render_table(
            ["bootstrap", "miss rate", "mean CI length"],
            [[k, v["miss"], v["length"]] for k, v in stats.items()],
            title="Ablation: chunked d.f. bootstrap vs classical (exp(1), n=20)",
        ),
    )
    # Both designs land in the same coverage/width ballpark — the
    # chunked design is not a correctness compromise.
    assert abs(stats["chunked"]["miss"] - stats["classical"]["miss"]) < 0.12
    assert stats["chunked"]["length"] == pytest.approx(
        stats["classical"]["length"], rel=0.4
    )


def test_ablation_weighted_samples_track_drift(benchmark, results_dir):
    """§VII extension: exponential decay follows a drifting mean."""

    def run() -> dict[str, float]:
        rng = np.random.default_rng(41)
        trials = 300
        drift_error = {"unweighted": 0.0, "decayed": 0.0}
        width = {"unweighted": 0.0, "decayed": 0.0}
        learner = WeightedLearner(half_life=10.0)
        for _ in range(trials):
            # The mean drifted from 0 to 5 halfway through the window.
            old = rng.normal(0.0, 1.0, 30)
            new = rng.normal(5.0, 1.0, 30)
            values = np.concatenate([old, new])
            ages = np.concatenate(
                [np.linspace(59, 30, 30), np.linspace(29, 0, 30)]
            )
            flat = learner.learn(values, np.zeros(60))
            decayed = learner.learn(values, ages)
            drift_error["unweighted"] += abs(
                flat.distribution.mean() - 5.0
            )
            drift_error["decayed"] += abs(
                decayed.distribution.mean() - 5.0
            )
            width["unweighted"] += flat.accuracy(0.9).mean.length
            width["decayed"] += decayed.accuracy(0.9).mean.length
        return {
            "unweighted_error": drift_error["unweighted"] / trials,
            "decayed_error": drift_error["decayed"] / trials,
            "unweighted_width": width["unweighted"] / trials,
            "decayed_width": width["decayed"] / trials,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_weighted",
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: weighted samples under mean drift (0 -> 5)",
        ),
    )
    # Decay tracks the current mean far better...
    assert out["decayed_error"] < 0.5 * out["unweighted_error"]
    # ...and honestly reports the reduced effective evidence.
    assert out["decayed_width"] > out["unweighted_width"]


def test_ablation_coupled_vs_single(benchmark, results_dir):
    """Coupling trades silent false negatives for explicit UNSUREs."""

    def run() -> dict[str, float]:
        rng = np.random.default_rng(43)
        trials, n = 600, 20
        single_fn = 0
        coupled_fn = 0
        coupled_unsure = 0
        for _ in range(trials):
            sample = rng.normal(5.35, 1.0, n)  # H1 true: mean > 5
            predicate = MTest(FieldStats.from_sample(sample), ">", 5.0, 0.05)
            if not predicate.run().reject:
                single_fn += 1
            outcome = coupled_tests(predicate, 0.05, 0.05)
            if outcome.value is ThreeValued.FALSE:
                coupled_fn += 1
            elif outcome.value is ThreeValued.UNSURE:
                coupled_unsure += 1
        return {
            "single_false_negatives": single_fn / trials,
            "coupled_false_negatives": coupled_fn / trials,
            "coupled_unsure": coupled_unsure / trials,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_coupled",
        render_table(
            ["metric", "rate"],
            [[k, v] for k, v in out.items()],
            title="Ablation: single vs coupled mTest (true mean 5.35 > 5)",
        ),
    )
    assert out["coupled_false_negatives"] <= 0.05 + 0.03
    assert out["single_false_negatives"] > out["coupled_false_negatives"]
    # Coupling reports its indecision instead of silently erring.
    assert out["coupled_unsure"] > 0.0


def test_ablation_percentile_vs_basic_bootstrap(benchmark, results_dir):
    """Percentile (the paper's choice) vs basic/reflected intervals."""

    def run() -> dict[str, float]:
        rng = np.random.default_rng(47)
        n, trials = 20, 400
        misses = {"percentile": 0, "basic": 0}
        for _ in range(trials):
            sample = rng.exponential(1.0, n)
            values = rng.choice(sample, size=100 * n, replace=True)
            for method in ("percentile", "basic"):
                info = bootstrap_accuracy_info(
                    values, n, 0.9, interval=method
                )
                misses[method] += not info.mean.contains(1.0)
        return {k: v / trials for k, v in misses.items()}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_interval_kind",
        render_table(
            ["interval", "mean miss rate"],
            [[k, v] for k, v in rates.items()],
            title="Ablation: percentile vs basic bootstrap interval "
                  "(exp(1), n=20)",
        ),
    )
    # Both stay in a usable coverage band; the paper's percentile choice
    # is not a liability on skewed data.
    assert rates["percentile"] < 0.35
    assert rates["basic"] < 0.35


def test_ablation_convolution_vs_monte_carlo(benchmark, results_dir):
    """Exact histogram convolution vs Monte-Carlo addition."""
    import time

    from repro.distributions.convolution import convolve_histograms
    from repro.distributions.histogram import HistogramDistribution

    def run() -> dict[str, float]:
        rng = np.random.default_rng(53)
        trials = 60
        conv_err = 0.0
        mc_err = 0.0
        conv_time = 0.0
        mc_time = 0.0
        for _ in range(trials):
            edges_a = np.sort(rng.uniform(0, 50, 9))
            edges_a[0], edges_a[-1] = 0.0, 50.0
            edges_b = np.sort(rng.uniform(0, 30, 7))
            edges_b[0], edges_b[-1] = 0.0, 30.0
            a = HistogramDistribution(edges_a, rng.uniform(0.1, 1, 8))
            b = HistogramDistribution(edges_b, rng.uniform(0.1, 1, 6))
            true_mean = a.mean() + b.mean()

            start = time.perf_counter()
            exact = convolve_histograms(a, b, bucket_count=64)
            conv_time += time.perf_counter() - start
            conv_err += abs(exact.mean() - true_mean)

            start = time.perf_counter()
            mc = a.sample(rng, 1000) + b.sample(rng, 1000)
            mc_time += time.perf_counter() - start
            mc_err += abs(float(mc.mean()) - true_mean)
        return {
            "convolution_mean_error": conv_err / trials,
            "monte_carlo_mean_error": mc_err / trials,
            "convolution_ms": 1000 * conv_time / trials,
            "monte_carlo_ms": 1000 * mc_time / trials,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_convolution",
        render_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: exact convolution vs Monte Carlo "
                  "(histogram + histogram)",
        ),
    )
    # The exact path eliminates sampling error in the result's mean.
    assert out["convolution_mean_error"] < 0.1 * out["monte_carlo_mean_error"]
