"""Bounded-memory sketch synopses vs exact rolling state.

The sketch learners (:mod:`repro.learning.sketch`) exist so that
million-tuple windows and million-key GROUP BYs stop costing O(window)
and O(keys x window) resident bytes.  This benchmark measures both
claims on the shipped operators:

* ``RollingLearnOperator`` with the exact Gaussian learner vs
  ``sketch-quantile`` at window sizes up to 1M tuples — retained state
  bytes (the ``state.bytes`` gauge input) and tuples/sec, with the
  acceptance gate "sketch state is >=10x smaller at window >= 64k"
  while the emitted accuracy stays within the advertised synopsis
  error;
* the interval-width inflation the sketch pays for that memory (mean
  emitted CI width sketch / exact at the same window) — reported, and
  loosely gated so a regression cannot hide;
* a churning GROUP BY over 1M distinct keys (``synopsis="chunked"`` +
  ``expire_after``) run in a subprocess so its peak RSS can be read
  from ``getrusage`` and gated against a CI memory cap.

Results land in ``benchmarks/results/BENCH_sketch.json``.
``SKETCH_SMOKE=1`` shrinks the workload (and the key count to 50k) for
CI smoke runs.
"""

import json
import os
import resource
import subprocess
import sys
import time

import numpy as np

from benchmarks.conftest import save_result
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    RollingLearnOperator,
)
from repro.streams.tuples import UncertainTuple

SMOKE = os.environ.get("SKETCH_SMOKE", "") not in ("", "0")
WINDOW_SIZES = (1_000, 8_000) if SMOKE else (1_000, 64_000, 1_000_000)
#: The window size at which the >=10x memory gate applies.
GATED_WINDOW = 8_000 if SMOKE else 64_000
GROUPBY_KEYS = 50_000 if SMOKE else 1_000_000
#: CI memory cap for the churning GROUP BY child process.
RSS_CAP_MB = 512 if SMOKE else 900


def _stream(n, seed=11):
    rng = np.random.default_rng(seed)
    for x in rng.normal(50.0, 8.0, size=n):
        yield UncertainTuple({"obs": float(x)})


def _rolling_pipeline(window_size, learner, **kwargs):
    return Pipeline(
        [
            RollingLearnOperator(
                "obs",
                window_size=window_size,
                learner=learner,
                emit_partial=False,
                **kwargs,
            ),
            CountingSink(),
        ]
    )


def _measure_rolling(window_size, learner, **kwargs):
    """One pass of 1.25x window tuples: state bytes + tuples/sec."""
    n = window_size + window_size // 4
    pipeline = _rolling_pipeline(window_size, learner, **kwargs)
    start = time.perf_counter()
    pipeline.run(_stream(n))
    elapsed = time.perf_counter() - start
    operator = pipeline.operators[0]
    return operator.state_bytes(), n / elapsed


def _mean_interval_width(window_size, learner, **kwargs):
    op = RollingLearnOperator(
        "obs", window_size=window_size, learner=learner, **kwargs
    )
    sink = CollectSink()
    pipeline = Pipeline([op, sink])
    pipeline.run(_stream(window_size * 2))
    infos = [
        t.value("accuracy")
        for t in sink.results[window_size:]
    ]
    assert infos, "no full-window emissions"
    for info in infos:
        # The memory gate only counts if the certificate survives: every
        # sketch emission must still carry a bounded synopsis error.
        assert 0.0 <= info.synopsis_error <= 1.0
    return float(np.mean([info.mean.length for info in infos]))


# Child workload for the RSS-gated GROUP BY: built tuples are consumed
# immediately (generator), so peak RSS is operator state + interpreter.
_GROUPBY_CHILD = """
import resource, sys, time
import numpy as np
from repro.streams.groupby import GroupedAggregate
from repro.streams.operators import CountingSink
from repro.streams.tuples import UncertainTuple

n_keys = int(sys.argv[1])
op = GroupedAggregate(
    "k", "v", window_size=8, agg="avg", emit_every=False,
    synopsis="chunked", expire_after=8192,
)
op.connect(CountingSink())
rng = np.random.default_rng(29)
values = rng.normal(0.0, 1.0, size=65536)
start = time.perf_counter()
for i in range(n_keys):
    op.receive(UncertainTuple({"k": i, "v": float(values[i % 65536])}))
elapsed = time.perf_counter() - start
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(n_keys / elapsed, op.group_count, op.state_bytes(), peak_kb)
"""


def _run_groupby_child(n_keys):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _GROUPBY_CHILD, str(n_keys)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    rate, live_groups, state_bytes, peak_kb = out.stdout.split()
    return (
        float(rate),
        int(live_groups),
        int(state_bytes),
        float(peak_kb) / 1024.0,
    )


def test_sketch_memory(results_dir):
    records = []
    state = {}

    for window_size in WINDOW_SIZES:
        for config, learner, kwargs in (
            ("exact-gaussian", "gaussian", {}),
            ("sketch-quantile", "sketch-quantile", {"k": 200}),
        ):
            bytes_retained, rate = _measure_rolling(
                window_size, learner, **kwargs
            )
            state[(config, window_size)] = bytes_retained
            records.append(
                {
                    "benchmark": "rolling_window",
                    "config": config,
                    "window_size": window_size,
                    "state_bytes": bytes_retained,
                    "tuples_per_sec": rate,
                }
            )

    inflation_window = WINDOW_SIZES[0]
    exact_width = _mean_interval_width(inflation_window, "gaussian")
    # Size the chunks to the window (32 chunks), as a deployment would:
    # staleness — and with it the interval widening — is ~1/chunks, so
    # the default 512-tuple chunks would be absurdly coarse at 1k.
    sketch_width = _mean_interval_width(
        inflation_window,
        "sketch-quantile",
        k=200,
        chunk_size=max(16, inflation_window // 32),
    )
    inflation = sketch_width / exact_width
    records.append(
        {
            "benchmark": "interval_inflation",
            "window_size": inflation_window,
            "exact_width": exact_width,
            "sketch_width": sketch_width,
            "inflation": inflation,
        }
    )

    group_rate, live_groups, group_state, peak_rss_mb = _run_groupby_child(
        GROUPBY_KEYS
    )
    records.append(
        {
            "benchmark": "groupby_churn",
            "config": "chunked+expire_after",
            "keys": GROUPBY_KEYS,
            "tuples_per_sec": group_rate,
            "live_groups": live_groups,
            "state_bytes": group_state,
            "peak_rss_mb": peak_rss_mb,
        }
    )

    (results_dir / "BENCH_sketch.json").write_text(
        json.dumps(records, indent=1) + "\n"
    )

    lines = ["config            window     state_bytes   tuples/s"]
    for (config, window_size), bytes_retained in sorted(state.items()):
        rate = next(
            r["tuples_per_sec"]
            for r in records
            if r.get("config") == config
            and r.get("window_size") == window_size
        )
        lines.append(
            f"{config:<16} {window_size:>7}  {bytes_retained:>13}  "
            f"{rate:>9.0f}"
        )
    lines.append(
        f"interval inflation @ {inflation_window}: {inflation:.2f}x"
    )
    lines.append(
        f"groupby {GROUPBY_KEYS} keys: {live_groups} live, "
        f"peak RSS {peak_rss_mb:.0f} MB"
    )
    save_result(results_dir, "sketch_memory", "\n".join(lines))

    # The tentpole gates.
    for window_size in WINDOW_SIZES:
        if window_size < GATED_WINDOW:
            continue
        exact = state[("exact-gaussian", window_size)]
        sketch = state[("sketch-quantile", window_size)]
        assert sketch * 10 <= exact, (
            f"sketch state {sketch}B not 10x below exact {exact}B "
            f"at window {window_size}"
        )
    # Sketch state must not grow with the window (bounded-memory claim).
    # Below ~chunk_count x chunk_size the ring is still filling up, so
    # the comparison starts at the gated window: growing the window 16x
    # beyond it must not grow the state more than a small constant (the
    # chunk ring pair-merges; per-sketch size grows logarithmically).
    reference = state[("sketch-quantile", GATED_WINDOW)]
    largest = state[("sketch-quantile", WINDOW_SIZES[-1])]
    assert largest <= reference * 4
    # Memory is bought with interval width; a regression that blows the
    # intervals up by an order of magnitude must not pass silently.
    assert inflation < 20.0
    assert peak_rss_mb < RSS_CAP_MB, (
        f"churning GROUP BY peaked at {peak_rss_mb:.0f} MB "
        f"(cap {RSS_CAP_MB} MB)"
    )
