"""Shared benchmark plumbing.

Each figure benchmark runs its experiment once (pedantic mode — the
experiments are statistical sweeps, not microbenchmarks), prints the
rendered table (visible with ``pytest -s`` and in captured output on
failure), and saves it under ``benchmarks/results/`` so EXPERIMENTS.md
can be regenerated from the files.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for microbenchmark inputs."""
    return np.random.default_rng(987)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered experiment table and persist it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
