"""Windowed-aggregate throughput: rolling kernels vs list rebuilds.

The sliding-window operators used to rebuild ``means``/``variances``
lists and re-scan ``min(sizes)`` on every slide — O(window) per tuple.
They now ride the rolling kernels of :mod:`repro.streams.rolling`
(compensated sums, monotonic-deque extrema, counter-based minimum
sample size), which makes every slide O(1) amortized.

This benchmark pits the shipped operators against ``_Legacy*`` copies
of the pre-PR list-rebuild implementations on the same streams and
asserts the speedup at ``window_size >= 256`` — where the O(window)
term dominates — is at least 3x.  Results land in
``benchmarks/results/BENCH_windows.json`` as
``{config, operator, window_size, tuples_per_sec}`` records.

``WINDOW_SMOKE=1`` shrinks the workload and relaxes the assertion to
"rolling is not slower" for CI smoke runs on noisy shared runners.
"""

import json
import os
from collections import deque

import numpy as np

from benchmarks.conftest import save_result
from repro.core.dfsample import DfSized
from repro.distributions.gaussian import GaussianDistribution
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CountingSink,
    Operator,
    SlidingGaussianAverage,
    WindowAggregate,
)
from repro.streams.throughput import measure_throughput
from repro.streams.tuples import UncertainTuple

SMOKE = os.environ.get("WINDOW_SMOKE", "") not in ("", "0")
N_ITEMS = 3000 if SMOKE else 20_000
REPEATS = 2 if SMOKE else 3
WINDOW_SIZES = (16, 256) if SMOKE else (16, 64, 256, 1024)
# The tentpole acceptance gate: O(1) vs O(window) must show up as at
# least this speedup once the window dwarfs the constant factors.
MIN_SPEEDUP = 1.0 if SMOKE else 3.0
GATED_WINDOW = 256


class _LegacyWindowAggregate(Operator):
    """The pre-PR WindowAggregate: full list rebuild on every slide."""

    def __init__(self, attribute, window_size, agg="avg", output=None):
        super().__init__()
        self.attribute = attribute
        self.window_size = window_size
        self.agg = agg
        self.output = output if output is not None else agg
        self._members = deque()

    def _advance(self, tup):
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        self._members.append(
            (dist.mean(), dist.variance(), field.sample_size)
        )
        if len(self._members) > self.window_size:
            self._members.popleft()

        means = [m for m, _, _ in self._members]
        variances = [v for _, v, _ in self._members]
        sizes = [n for _, _, n in self._members if n is not None]
        df_size = min(sizes) if sizes else None
        k = len(self._members)

        if self.agg == "count":
            value = float(k)
        elif self.agg == "min":
            value = min(means)
        elif self.agg == "max":
            value = max(means)
        elif self.agg == "sum":
            value = DfSized(
                GaussianDistribution(sum(means), sum(variances)), df_size
            )
        else:  # avg
            value = DfSized(
                GaussianDistribution(
                    sum(means) / k, sum(variances) / (k * k)
                ),
                df_size,
            )
        attributes = dict(tup.attributes)
        attributes[self.output] = value
        return tup.with_attributes(attributes)

    def process(self, tup):
        self.emit(self._advance(tup))

    def process_many(self, tuples):
        self.emit_many([self._advance(tup) for tup in tuples])


class _LegacySlidingGaussianAverage(Operator):
    """The pre-PR SlidingGaussianAverage: plain += / -= running sums."""

    def __init__(self, attribute, window_size, output="avg"):
        super().__init__()
        self.attribute = attribute
        self.window_size = window_size
        self.output = output
        self._members = deque()
        self._mu_sum = 0.0
        self._var_sum = 0.0
        self._size_counts = {}

    def process(self, tup):
        field = tup.dfsized(self.attribute)
        dist = field.distribution
        self._members.append((dist.mu, dist.sigma2, field.sample_size))
        self._mu_sum += dist.mu
        self._var_sum += dist.sigma2
        if field.sample_size is not None:
            counts = self._size_counts
            counts[field.sample_size] = counts.get(field.sample_size, 0) + 1
        if len(self._members) > self.window_size:
            old_mu, old_var, old_n = self._members.popleft()
            self._mu_sum -= old_mu
            self._var_sum -= old_var
            if old_n is not None:
                self._size_counts[old_n] -= 1
                if self._size_counts[old_n] == 0:
                    del self._size_counts[old_n]
        k = len(self._members)
        avg = GaussianDistribution(self._mu_sum / k, self._var_sum / (k * k))
        size = min(self._size_counts) if self._size_counts else None
        attributes = dict(tup.attributes)
        attributes[self.output] = DfSized(avg, size)
        self.emit(tup.with_attributes(attributes))


def _stream(n=N_ITEMS, seed=11):
    rng = np.random.default_rng(seed)
    mus = rng.normal(50.0, 12.0, size=n)
    sigmas = rng.uniform(0.5, 5.0, size=n)
    sizes = rng.integers(10, 200, size=n)
    return [
        UncertainTuple(
            {
                "x": DfSized(
                    GaussianDistribution(float(mu), float(s2)), int(sz)
                )
            }
        )
        for mu, s2, sz in zip(mus, sigmas, sizes)
    ]


def _measure(factory, tuples):
    return measure_throughput(factory, tuples, repeats=REPEATS)


def test_window_throughput(results_dir):
    tuples = _stream()
    records = []
    speedups = {}

    cases = [
        (
            "WindowAggregate",
            "avg",
            lambda w: lambda: Pipeline(
                [WindowAggregate("x", w, agg="avg"), CountingSink()]
            ),
            lambda w: lambda: Pipeline(
                [_LegacyWindowAggregate("x", w, agg="avg"), CountingSink()]
            ),
        ),
        (
            "WindowAggregate",
            "min",
            lambda w: lambda: Pipeline(
                [WindowAggregate("x", w, agg="min"), CountingSink()]
            ),
            lambda w: lambda: Pipeline(
                [_LegacyWindowAggregate("x", w, agg="min"), CountingSink()]
            ),
        ),
        (
            "SlidingGaussianAverage",
            "avg",
            lambda w: lambda: Pipeline(
                [SlidingGaussianAverage("x", w), CountingSink()]
            ),
            lambda w: lambda: Pipeline(
                [_LegacySlidingGaussianAverage("x", w), CountingSink()]
            ),
        ),
    ]

    for operator, agg, rolling_factory, legacy_factory in cases:
        label = f"{operator}[{agg}]"
        for window_size in WINDOW_SIZES:
            rolling = _measure(rolling_factory(window_size), tuples)
            legacy = _measure(legacy_factory(window_size), tuples)
            records.append(
                {
                    "config": "rolling",
                    "operator": label,
                    "window_size": window_size,
                    "tuples_per_sec": rolling,
                }
            )
            records.append(
                {
                    "config": "legacy-rebuild",
                    "operator": label,
                    "window_size": window_size,
                    "tuples_per_sec": legacy,
                }
            )
            speedups[(label, window_size)] = rolling / legacy

    (results_dir / "BENCH_windows.json").write_text(
        json.dumps(records, indent=1) + "\n"
    )

    lines = ["operator                       window   speedup"]
    for (label, window_size), speedup in sorted(speedups.items()):
        lines.append(f"{label:<30} {window_size:>6}   {speedup:>6.2f}x")
    save_result(results_dir, "window_throughput", "\n".join(lines))

    # SlidingGaussianAverage was already O(1); its gate is only "the
    # drift guard did not make it slower" (within noise).  The rebuild
    # operators must clear the real O(window) -> O(1) bar.
    for (label, window_size), speedup in speedups.items():
        if window_size < GATED_WINDOW:
            continue
        floor = (
            0.5
            if label.startswith("SlidingGaussianAverage")
            else MIN_SPEEDUP
        )
        assert speedup >= floor, (
            f"{label} at window {window_size}: {speedup:.2f}x < {floor}x\n"
            + "\n".join(lines)
        )
