"""Multi-query scaling: sustained ingest with N standing queries.

The shared-subplan engine's value proposition is that the expensive
accuracy-bearing prefix is paid once per tuple per *group*, not once
per query, and that vectorized residual screening makes the per-query
marginal cost a few array comparisons.  This benchmark measures
sustained ``insert_many`` throughput on a Fig-5-style workload (learned
Gaussian road delays with de facto sample sizes, low-selectivity
probability-threshold predicates) at 1 / 100 / 10 000 standing queries,
naive dispatch vs shared.

Gates (full mode): shared >= 10x naive at 100 standing queries and
>= 50x at 10 000 — i.e. the marginal cost of another same-prefix query
is strongly sublinear.  ``MULTIQUERY_SMOKE=1`` shrinks the workload and
relaxes the gate to >= 5x at 100 queries for starved CI runners.

Results land in ``benchmarks/results/BENCH_multiquery.json``.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import save_result
from repro.core.dfsample import DfSized
from repro.db import StreamDatabase
from repro.distributions.gaussian import GaussianDistribution
from repro.experiments.harness import render_table
from repro.streams.tuples import UncertainTuple

SMOKE = os.environ.get("MULTIQUERY_SMOKE") == "1"

#: (standing queries, tuples through the shared path, tuples through
#: the naive path).  Naive dispatch at 10k queries runs two decimal
#: orders of magnitude slower, so it gets a small slice and a per-tuple
#: rate — same metric, bounded wall clock.
SCALES = (
    [(1, 8_000, 8_000), (100, 8_000, 300)]
    if SMOKE
    else [(1, 20_000, 20_000), (100, 20_000, 500), (10_000, 5_000, 20)]
)

GATES = {100: 5.0 if SMOKE else 10.0, 10_000: 50.0}


def _fig5_tuples(n: int) -> list[UncertainTuple]:
    """Learned road-delay Gaussians, the paper's standing workload."""
    rng = np.random.default_rng(42)
    return [
        UncertainTuple(
            {
                "road_id": float(i),
                "delay": DfSized(
                    GaussianDistribution(
                        float(rng.normal(60.0, 15.0)),
                        float(rng.uniform(1.0, 30.0)),
                    ),
                    int(rng.integers(2, 40)),
                ),
            }
        )
        for i in range(n)
    ]


def _database(shared: bool, n_queries: int) -> StreamDatabase:
    db = StreamDatabase(shared_subplans=shared)
    db.create_stream("t")
    sink: list = []
    for i in range(n_queries):
        # Low selectivity (the alerting shape): thresholds far in the
        # tail, 50 distinct residuals cycling so the vectorized screen
        # sees a realistic constant mix, one shared prefix.
        db.register_continuous(
            f"q{i}",
            f"SELECT road_id, delay FROM t "
            f"WHERE delay > {120 + (i % 50)} PROB 0.9",
            sink.append,
        )
    return db


def _rate(shared: bool, n_queries: int, tuples) -> float:
    db = _database(shared, n_queries)
    start = time.perf_counter()
    db.insert_many("t", tuples)
    elapsed = time.perf_counter() - start
    return len(tuples) / elapsed


def test_multiquery_scaling(benchmark, results_dir):
    tuples = _fig5_tuples(max(n for _q, n, _m in SCALES))

    def run():
        records = []
        for n_queries, n_shared, n_naive in SCALES:
            shared_rate = _rate(True, n_queries, tuples[:n_shared])
            naive_rate = _rate(False, n_queries, tuples[:n_naive])
            records.append(
                {
                    "standing_queries": n_queries,
                    "shared_tuples_per_sec": shared_rate,
                    "naive_tuples_per_sec": naive_rate,
                    "speedup": shared_rate / naive_rate,
                    "smoke": SMOKE,
                }
            )
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)

    (results_dir / "BENCH_multiquery.json").write_text(
        json.dumps(records, indent=2) + "\n"
    )
    save_result(
        results_dir,
        "multiquery_scaling",
        render_table(
            ["standing queries", "shared t/s", "naive t/s", "speedup"],
            [
                [
                    r["standing_queries"],
                    r["shared_tuples_per_sec"],
                    r["naive_tuples_per_sec"],
                    r["speedup"],
                ]
                for r in records
            ],
            title=(
                "Shared-subplan multi-query scaling "
                f"({'smoke' if SMOKE else 'full'} mode)"
            ),
        ),
    )

    by_queries = {r["standing_queries"]: r for r in records}
    for n_queries, gate in GATES.items():
        record = by_queries.get(n_queries)
        if record is None:
            continue  # smoke mode drops the 10k point
        assert record["speedup"] >= gate, (
            f"shared path only {record['speedup']:.1f}x naive at "
            f"{n_queries} standing queries; gate is {gate}x"
        )
    # Sublinearity: per-query marginal cost must collapse, i.e. the
    # shared path at 100 queries retains most of its 1-query rate.
    one = by_queries[1]["shared_tuples_per_sec"]
    hundred = by_queries[100]["shared_tuples_per_sec"]
    assert hundred >= one / 25.0, (one, hundred)
