"""Disabled-tracer overhead + export validity on the Fig 5(c) workload.

Three claims from ``docs/TRACING.md``, verified directly:

1. With no tracer attached, the ``_trace is None`` check added to every
   operator hook costs less than 5% of throughput against the bare
   (hook-free) execution paths — same methodology as
   ``test_obs_overhead.py``: interleaved best-of-N rounds, re-measured
   up to ``ATTEMPTS`` times so only a reproducible regression fails.
2. Pipeline output is byte-identical with a tracer attached vs not.
3. An exported trace of the workload passes the Chrome trace-event
   schema check (strict RFC 8259, required keys, finite timestamps).

Results land in ``benchmarks/results/trace_overhead.txt`` and
``BENCH_trace_overhead.json``.  ``OBS_SMOKE=1`` shrinks the workload
for CI smoke runs.
"""

import json
import os
import pickle
import types

from benchmarks.conftest import save_result
from repro.experiments.fig5_throughput import (
    WINDOW_SIZE,
    _AnalyticAccuracy,
    _LearnGaussian,
    _make_stream,
)
from repro.obs.export import validate_chrome_trace, write_chrome_trace
from repro.obs.trace import TraceConfig, Tracer
from repro.streams.engine import Pipeline
from repro.streams.operators import (
    CollectSink,
    CountingSink,
    SlidingGaussianAverage,
)
from repro.streams.throughput import measure_throughput

SMOKE = os.environ.get("OBS_SMOKE", "") not in ("", "0")
N_ITEMS = 2000 if SMOKE else 6000
ROUNDS = 4 if SMOKE else 5
ATTEMPTS = 3
MAX_OVERHEAD = 0.05


def _bare_receive(self, tup):
    self.process(tup)


def _bare_receive_many(self, tuples):
    self.process_many(tuples)


def _bare_emit(self, tup):
    if self._downstream is not None:
        self._downstream.receive(tup)


def _bare_emit_many(self, tuples):
    if self._downstream is not None and tuples:
        self._downstream.receive_many(tuples)


def _bare_flush(self):
    self.on_flush()
    if self._downstream is not None:
        self._downstream.flush()


def _strip(pipeline: Pipeline) -> Pipeline:
    """Rebind every hook to its uninstrumented body (pre-hooks semantics)."""
    for op in pipeline.operators:
        op.receive = types.MethodType(_bare_receive, op)
        op.receive_many = types.MethodType(_bare_receive_many, op)
        op.emit = types.MethodType(_bare_emit, op)
        op.emit_many = types.MethodType(_bare_emit_many, op)
        op.flush = types.MethodType(_bare_flush, op)
    return pipeline


def _fig5c_pipeline(sink=CountingSink) -> Pipeline:
    return Pipeline(
        [
            _LearnGaussian("points", "value"),
            SlidingGaussianAverage("value", WINDOW_SIZE),
            _AnalyticAccuracy("avg"),
            sink(),
        ]
    )


def _bare_pipeline() -> Pipeline:
    return _strip(_fig5c_pipeline())


def test_no_tracer_overhead_under_5_percent(benchmark, results_dir):
    tuples = _make_stream(N_ITEMS, seed=21)

    def measure(rounds: int) -> tuple[float, float]:
        bare = 0.0
        untraced = 0.0
        for _ in range(rounds):
            bare = max(
                bare, measure_throughput(_bare_pipeline, tuples, repeats=1)
            )
            untraced = max(
                untraced,
                measure_throughput(_fig5c_pipeline, tuples, repeats=1),
            )
        return bare, untraced

    def measure_until_stable() -> tuple[float, float]:
        measure(1)  # warm caches so neither variant pays the cold start
        bare, untraced = measure(ROUNDS)
        for attempt in range(1, ATTEMPTS):
            if untraced / bare >= 1.0 - MAX_OVERHEAD:
                break
            more_bare, more_untraced = measure(ROUNDS * (attempt + 1))
            bare = max(bare, more_bare)
            untraced = max(untraced, more_untraced)
        return bare, untraced

    bare, untraced = benchmark.pedantic(
        measure_until_stable, rounds=1, iterations=1
    )
    # Informational: throughput with the tracer actually on (one pass;
    # tracing enabled is allowed to cost more than 5%).
    tracer = Tracer(TraceConfig())
    traced = measure_throughput(
        _fig5c_pipeline, tuples, repeats=1, tracer=tracer
    )
    ratio = untraced / bare
    save_result(
        results_dir,
        "trace_overhead",
        "Tracing disabled-mode overhead (Fig 5(c) analytic)\n"
        f"  bare hooks:       {int(bare):>8} tuples/s\n"
        f"  no tracer:        {int(untraced):>8} tuples/s\n"
        f"  tracer attached:  {int(traced):>8} tuples/s "
        f"({len(tracer)} spans, {len(tracer.provenance)} records)\n"
        f"  ratio:            {ratio:>8.3f} (floor {1 - MAX_OVERHEAD})",
    )
    (results_dir / "BENCH_trace_overhead.json").write_text(
        json.dumps(
            {
                "workload": "fig5c-analytic",
                "n_items": N_ITEMS,
                "smoke": SMOKE,
                "bare_tuples_per_sec": bare,
                "untraced_tuples_per_sec": untraced,
                "traced_tuples_per_sec": traced,
                "disabled_overhead_ratio": ratio,
                "max_overhead": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )
    assert ratio >= 1.0 - MAX_OVERHEAD, (
        f"disabled-mode tracing costs {(1 - ratio):.1%} of throughput "
        f"(budget {MAX_OVERHEAD:.0%}): {int(bare)} -> {int(untraced)} "
        "tuples/s"
    )


def test_output_byte_identical_with_tracer_on_vs_off():
    tuples = _make_stream(600, seed=22)
    plain = _fig5c_pipeline(sink=CollectSink)
    traced = _fig5c_pipeline(sink=CollectSink)
    traced.attach_trace(Tracer(TraceConfig()))
    plain.run(tuples)
    traced.run(tuples)
    assert [pickle.dumps(t) for t in plain.sink.results] == [
        pickle.dumps(t) for t in traced.sink.results
    ]


def test_exported_trace_passes_schema_check(tmp_path):
    tuples = _make_stream(600, seed=23)
    tracer = Tracer(TraceConfig())
    pipeline = _fig5c_pipeline()
    pipeline.attach_trace(tracer)
    pipeline.run_batched(tuples, batch_size=128)
    text = write_chrome_trace(tracer, str(tmp_path / "fig5c.trace.json"))
    obj = validate_chrome_trace(text)
    complete = [e for e in obj["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == len(tracer.spans)
