"""Microbenchmarks of the per-tuple hot paths.

Unlike the figure benchmarks (statistical sweeps run once), these use
pytest-benchmark's timing loop to track per-call cost of the operations
the stream engine performs for every tuple: interval computation,
bootstrapping, hypothesis testing, learning, and sliding aggregation.
"""

import numpy as np
import pytest

from repro.core.analytic import distribution_accuracy
from repro.core.bootstrap import bootstrap_accuracy_info
from repro.core.coupled import coupled_tests
from repro.core.dfsample import DfSized
from repro.core.predicates import FieldStats, MdTest, MTest, PTest
from repro.distributions.gaussian import GaussianDistribution
from repro.learning.gaussian_learner import GaussianLearner
from repro.learning.histogram_learner import HistogramLearner
from repro.query.executor import ExecutorConfig, QueryExecutor
from repro.streams.engine import Pipeline
from repro.streams.operators import CountingSink, SlidingGaussianAverage
from repro.streams.tuples import UncertainTuple


@pytest.fixture(scope="module")
def gaussian_field() -> DfSized:
    return DfSized(GaussianDistribution(100.0, 25.0), 20)


def test_micro_analytic_accuracy(benchmark, gaussian_field):
    benchmark(
        distribution_accuracy,
        gaussian_field.distribution, 20, 0.9,
    )


def test_micro_bootstrap_accuracy(benchmark, rng):
    values = rng.normal(100, 5, 400)
    benchmark(bootstrap_accuracy_info, values, 20, 0.9)


def test_micro_mtest(benchmark):
    field = FieldStats(100.0, 5.0, 20)
    predicate = MTest(field, ">", 99.0, 0.05)
    benchmark(predicate.run)


def test_micro_coupled_mtest(benchmark):
    field = FieldStats(100.0, 5.0, 20)
    predicate = MTest(field, ">", 99.9, 0.05)
    benchmark(coupled_tests, predicate, 0.05, 0.05)


def test_micro_coupled_mdtest(benchmark):
    x = FieldStats(100.0, 5.0, 20)
    y = FieldStats(99.0, 5.0, 20)
    predicate = MdTest(x, y, ">", 0.0, 0.05)
    benchmark(coupled_tests, predicate, 0.05, 0.05)


def test_micro_coupled_ptest(benchmark):
    predicate = PTest(0.62, 20, 0.5, ">", 0.05)
    benchmark(coupled_tests, predicate, 0.05, 0.05)


def test_micro_gaussian_learning(benchmark, rng):
    points = rng.normal(100, 10, 20)
    learner = GaussianLearner()
    benchmark(learner.learn, points)


def test_micro_histogram_learning(benchmark, rng):
    points = rng.normal(100, 10, 50)
    learner = HistogramLearner(bucket_count=8)
    benchmark(learner.learn, points)


def test_micro_sliding_average_pipeline(benchmark, rng):
    learner = GaussianLearner()
    tuples = [
        UncertainTuple(
            {"value": learner.learn(rng.normal(100, 5, 20)).as_dfsized()}
        )
        for _ in range(1000)
    ]

    def run() -> int:
        pipe = Pipeline(
            [SlidingGaussianAverage("value", 100), CountingSink()]
        )
        pipe.run(tuples)
        return pipe.sink.count

    assert benchmark(run) == 1000


def test_micro_query_executor_per_tuple(benchmark, gaussian_field):
    executor = QueryExecutor(
        "SELECT v FROM s WHERE v > 95 PROB 0.5",
        config=ExecutorConfig(seed=0),
    )
    tup = UncertainTuple({"v": gaussian_field})
    benchmark(executor.execute_one, tup)


def test_micro_critical_values_memoized(benchmark):
    """Hot-path quantile lookup: one cache entry vs three scipy solves."""
    from repro.core.analytic import critical_values

    critical_values(0.9, 19)  # prime the cache; steady state is all hits
    benchmark(critical_values, 0.9, 19)


def test_micro_critical_values_cold(benchmark):
    """The uncached cost the memoization removes (for comparison)."""
    from repro.core.analytic import critical_values

    def cold() -> tuple[float, float, float]:
        critical_values.cache_clear()
        return critical_values(0.9, 19)

    benchmark(cold)


def test_micro_accuracy_from_moments_constant_df(benchmark, rng):
    """Batched Theorem 1 on a constant-df batch (the stream shape).

    With one distinct sample size the unique-df fast path reduces the
    interval pass to one memoized table entry per quantile family.
    """
    from repro.core.analytic import accuracy_from_moments

    means = rng.normal(100.0, 5.0, 256)
    variances = rng.uniform(1.0, 9.0, 256)
    benchmark(accuracy_from_moments, means, variances, 20, 0.9)


def test_micro_vtest(benchmark):
    from repro.core.predicates import VTest

    predicate = VTest(FieldStats(0.0, 2.0, 20), ">", 3.0, 0.05)
    benchmark(predicate.run)


def test_micro_histogram_convolution(benchmark):
    from repro.distributions.convolution import convolve_histograms
    from repro.distributions.histogram import HistogramDistribution

    a = HistogramDistribution(
        list(range(9)), [0.1, 0.1, 0.2, 0.1, 0.1, 0.1, 0.1, 0.2]
    )
    b = HistogramDistribution(
        list(range(0, 18, 2)), [0.2, 0.1, 0.1, 0.2, 0.1, 0.1, 0.1, 0.1]
    )
    benchmark(convolve_histograms, a, b)


def test_micro_db_insert_loop(benchmark):
    """Ingest-only baseline: one ``insert`` call per tuple.

    Each call re-resolves the stream state, validates one tuple, and
    walks the (empty) watcher list — the per-tuple overhead
    ``insert_many`` hoists.
    """
    from repro.db import StreamDatabase
    from repro.streams.tuples import Schema

    tuples = [UncertainTuple({"x": float(i)}) for i in range(2000)]

    def run() -> int:
        db = StreamDatabase()
        db.create_stream("s", Schema([("x", "number")]))
        for tup in tuples:
            db.insert("s", tup)
        return db.count("s")

    assert benchmark(run) == 2000


def test_micro_db_insert_many(benchmark):
    """Batched ingest: state resolved once, schema validated per batch."""
    from repro.db import StreamDatabase
    from repro.streams.tuples import Schema

    tuples = [UncertainTuple({"x": float(i)}) for i in range(2000)]

    def run() -> int:
        db = StreamDatabase()
        db.create_stream("s", Schema([("x", "number")]))
        db.insert_many("s", tuples)
        return db.count("s")

    assert benchmark(run) == 2000


def test_micro_tuple_serialisation(benchmark, rng):
    from repro.learning.histogram_learner import HistogramLearner
    from repro.persist import tuple_from_dict, tuple_to_dict

    fitted = HistogramLearner(bucket_count=8).learn(rng.normal(50, 5, 40))
    tup = UncertainTuple({"road": 1.0, "delay": fitted.as_dfsized()})

    def round_trip():
        return tuple_from_dict(tuple_to_dict(tup))

    benchmark(round_trip)
