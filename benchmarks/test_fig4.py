"""Benchmarks reproducing Figures 4(a)-4(d): analytical accuracy (§V-B).

Full-scale runs (100 segments, n in 10..80, 90% intervals) with shape
assertions matching the paper:

* 4(a)/4(b): interval lengths fall roughly like 1/sqrt(n);
* 4(c): bin heights have the lowest miss rates, the variance the
  highest, and the mean's miss rate is elevated at small n;
* 4(d): per-family averaged miss rates stay low for all five families.
"""

import math

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig4 import Fig4Sweep, run_fig4, run_fig4d
from repro.workloads.synthetic import DISTRIBUTION_NAMES

SAMPLE_SIZES = (10, 20, 30, 40, 50, 60, 70, 80)


@pytest.fixture(scope="module")
def sweep() -> Fig4Sweep:
    """The shared full-scale n-sweep behind Figures 4(a)-(c)."""
    return run_fig4(
        seed=7,
        n_segments=100,
        sample_sizes=SAMPLE_SIZES,
        confidence=0.9,
        true_sample_size=600,
    )


def test_fig4a_interval_length_of_mu(benchmark, sweep, results_dir):
    def report() -> Fig4Sweep:
        return sweep

    result = benchmark.pedantic(report, rounds=1, iterations=1)
    save_result(results_dir, "fig4a_fig4b_fig4c", result.render())

    lengths = result.mu_lengths()
    # Strictly decreasing in n (averaged over 100 segments this is firm).
    assert all(a > b for a, b in zip(lengths, lengths[1:]))
    # Roughly 1/sqrt(n): the n=10 -> n=80 drop should be within 2x of
    # the theoretical sqrt(8) ~ 2.83 factor.
    ratio = lengths[0] / lengths[-1]
    assert 1.8 <= ratio <= 5.5


def test_fig4b_normalized_lengths(benchmark, sweep):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    normalized = result.normalized_lengths()
    for stat in ("bin_heights", "mean", "variance"):
        series = normalized[stat]
        assert series[0] == pytest.approx(1.0)
        # All statistics shrink substantially by n=80.
        assert series[-1] < 0.62
        # Bin heights and mean shrink like 1/sqrt(n) within slack.
        if stat != "variance":
            expected = math.sqrt(SAMPLE_SIZES[0] / SAMPLE_SIZES[-1])
            assert series[-1] == pytest.approx(expected, abs=0.18)


def test_fig4c_miss_rates(benchmark, sweep):
    result = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    misses = result.miss_rates
    # Paper: bin heights lowest, variance highest (normality assumption
    # hurts the chi-square interval on skewed road delays).
    mean_by_stat = {
        stat: sum(series) / len(series) for stat, series in misses.items()
    }
    assert mean_by_stat["bin_heights"] < mean_by_stat["mean"]
    assert mean_by_stat["mean"] < mean_by_stat["variance"]
    # Bin-height misses stay near the nominal 10%.
    assert max(misses["bin_heights"]) < 0.2
    # The mean's miss rate is worse at small n than at large n.
    assert misses["mean"][0] >= misses["mean"][-1]


def test_fig4d_miss_rates_per_family(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig4d(seed=7, n=20, trials=300),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig4d", result.render())
    assert set(result.miss_rates) == set(DISTRIBUTION_NAMES)
    for family, rate in result.miss_rates.items():
        # Paper: "with all five types of distributions, the miss rates
        # are relatively low" (90% intervals -> ~10% inherent error).
        assert rate < 0.22, family
    # Skew hurts the variance interval's normality assumption: the
    # exponential family misses far more often than the uniform there.
    assert (
        result.per_statistic["exponential"]["variance"]
        > result.per_statistic["uniform"]["variance"]
    )
