"""Disabled-telemetry overhead + export validity on the Fig 5(c) workload.

Three claims from ``docs/MONITORING.md``, verified directly:

1. With no telemetry recorder attached, the ``telemetry is None`` checks
   added to the run loops cost less than 5% of throughput against the
   bare (hook-free) execution paths — same methodology as
   ``test_trace_overhead.py``: interleaved best-of-N rounds, re-measured
   up to ``ATTEMPTS`` times so only a reproducible regression fails.
2. Pipeline output is byte-identical with a recorder attached vs not.
3. The workload's frame series exports as strict JSON and an alert log
   evaluated over it exports as strict JSON lines.

Results land in ``benchmarks/results/slo_overhead.txt`` and
``BENCH_slo_overhead.json``.  ``SLO_SMOKE=1`` shrinks the workload for
CI smoke runs.
"""

import json
import os
import pickle

from benchmarks.conftest import save_result
from benchmarks.test_trace_overhead import _fig5c_pipeline, _strip
from repro.experiments.fig5_throughput import _make_stream
from repro.obs.alerts import AlertLog
from repro.obs.slo import parse_rule
from repro.obs.timeseries import TelemetryConfig, TelemetryRecorder
from repro.streams.engine import Pipeline
from repro.streams.operators import CollectSink
from repro.streams.throughput import measure_throughput

SMOKE = os.environ.get("SLO_SMOKE", "") not in ("", "0")
N_ITEMS = 2000 if SMOKE else 6000
ROUNDS = 4 if SMOKE else 5
ATTEMPTS = 3
MAX_OVERHEAD = 0.05
FRAME_INTERVAL = 256

RULES = [
    parse_rule("ci_width p95 <= 10.0"),
    parse_rule("de_facto_n p5 >= 2"),
]


def _bare_pipeline() -> Pipeline:
    return _strip(_fig5c_pipeline())


def test_no_telemetry_overhead_under_5_percent(benchmark, results_dir):
    tuples = _make_stream(N_ITEMS, seed=31)

    def measure(rounds: int) -> tuple[float, float]:
        bare = 0.0
        silent = 0.0
        for _ in range(rounds):
            bare = max(
                bare, measure_throughput(_bare_pipeline, tuples, repeats=1)
            )
            silent = max(
                silent,
                measure_throughput(_fig5c_pipeline, tuples, repeats=1),
            )
        return bare, silent

    def measure_until_stable() -> tuple[float, float]:
        measure(1)  # warm caches so neither variant pays the cold start
        bare, silent = measure(ROUNDS)
        for attempt in range(1, ATTEMPTS):
            if silent / bare >= 1.0 - MAX_OVERHEAD:
                break
            more_bare, more_silent = measure(ROUNDS * (attempt + 1))
            bare = max(bare, more_bare)
            silent = max(silent, more_silent)
        return bare, silent

    bare, silent = benchmark.pedantic(
        measure_until_stable, rounds=1, iterations=1
    )
    # Informational: throughput with the recorder actually on (one pass;
    # enabled telemetry is allowed to cost more than 5%).
    recorder = TelemetryRecorder(TelemetryConfig(FRAME_INTERVAL))
    recorded = measure_throughput(
        _fig5c_pipeline, tuples, repeats=1, telemetry=recorder
    )
    log = AlertLog()
    log.evaluate(recorder.series, RULES)
    ratio = silent / bare
    save_result(
        results_dir,
        "slo_overhead",
        "SLO telemetry disabled-mode overhead (Fig 5(c) analytic)\n"
        f"  bare hooks:        {int(bare):>8} tuples/s\n"
        f"  no telemetry:      {int(silent):>8} tuples/s\n"
        f"  recorder attached: {int(recorded):>8} tuples/s "
        f"({len(recorder.series)} frames, {len(log)} transitions)\n"
        f"  ratio:             {ratio:>8.3f} (floor {1 - MAX_OVERHEAD})",
    )
    (results_dir / "BENCH_slo_overhead.json").write_text(
        json.dumps(
            {
                "workload": "fig5c-analytic",
                "n_items": N_ITEMS,
                "smoke": SMOKE,
                "frame_interval": FRAME_INTERVAL,
                "bare_tuples_per_sec": bare,
                "silent_tuples_per_sec": silent,
                "recorded_tuples_per_sec": recorded,
                "disabled_overhead_ratio": ratio,
                "max_overhead": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )
    assert ratio >= 1.0 - MAX_OVERHEAD, (
        f"disabled-mode telemetry costs {(1 - ratio):.1%} of throughput "
        f"(budget {MAX_OVERHEAD:.0%}): {int(bare)} -> {int(silent)} "
        "tuples/s"
    )


def test_output_byte_identical_with_telemetry_on_vs_off():
    tuples = _make_stream(600, seed=32)
    plain = _fig5c_pipeline(sink=CollectSink)
    recorded = _fig5c_pipeline(sink=CollectSink)
    recorded.attach_telemetry(
        TelemetryRecorder(TelemetryConfig(frame_interval=128))
    )
    plain.run(tuples)
    recorded.run(tuples)
    assert [pickle.dumps(t) for t in plain.sink.results] == [
        pickle.dumps(t) for t in recorded.sink.results
    ]


def test_frame_and_alert_exports_stay_strict(tmp_path):
    tuples = _make_stream(600, seed=33)
    recorder = TelemetryRecorder(TelemetryConfig(frame_interval=128))
    pipeline = _fig5c_pipeline()
    pipeline.attach_telemetry(recorder)
    pipeline.run_batched(tuples, batch_size=128)
    assert len(recorder.series) >= 4
    frames_text = recorder.to_json(indent=2)
    json.loads(frames_text, parse_constant=lambda lit: 1 / 0)
    log = AlertLog()
    log.evaluate(recorder.series, RULES)
    jsonl = log.to_jsonl()
    for line in jsonl.splitlines():
        json.loads(line, parse_constant=lambda lit: 1 / 0)
    out = tmp_path / "slo_alerts.jsonl"
    out.write_text(jsonl)
    assert out.read_text() == jsonl
