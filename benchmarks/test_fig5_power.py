"""Benchmarks reproducing Figures 5(g) and 5(h): test power (§V-D).

Shape assertions per the paper:

* 5(g): power of coupled mTest rises with delta for every family, and
  rises fastest for the uniform family (tiny variance) with Gamma ahead
  of the remaining three;
* 5(h): power of coupled pTest rises with tau, at roughly the same rate
  for all five families (quantile-based decisions are
  distribution-free).
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig5_power import run_fig5g, run_fig5h
from repro.workloads.synthetic import DISTRIBUTION_NAMES

DELTAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
TAUS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


def test_fig5g_mtest_power(benchmark, results_dir):
    sweep = benchmark.pedantic(
        lambda: run_fig5g(seed=23, deltas=DELTAS, trials=400),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5g", sweep.render())

    for family in DISTRIBUTION_NAMES:
        series = sweep.power[family]
        # Power rises with delta (allow one local wiggle of MC noise).
        assert series[-1] > series[0] + 0.3, family
    # Paper: "the test power increases faster with the uniform and
    # Gamma distributions".
    mid = len(DELTAS) // 2
    others = [
        sweep.power[f][mid]
        for f in ("exponential", "normal", "weibull")
    ]
    assert sweep.power["uniform"][mid] > max(others)
    assert sweep.power["gamma"][mid] > float(np.mean(others))


def test_fig5h_ptest_power(benchmark, results_dir):
    sweep = benchmark.pedantic(
        lambda: run_fig5h(seed=23, taus=TAUS, delta=0.3, trials=400),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5h", sweep.render())

    for family in DISTRIBUTION_NAMES:
        series = sweep.power[family]
        assert series[-1] > series[0], family
    # Paper: quantile-based decisions are distribution-free, so the five
    # curves track each other; the cross-family spread stays modest.
    for i, tau in enumerate(TAUS):
        values = [sweep.power[f][i] for f in DISTRIBUTION_NAMES]
        assert max(values) - min(values) < 0.25, tau
