"""Benchmarks reproducing Figures 5(d) and 5(e): predicate error rates (§V-D).

Full scale: 100 close-mean route pairs, 200 comparisons per sample size.
Shape assertions per the paper:

* 5(d) single test: false positives bounded by alpha; false negatives
  large at small n and decreasing with n; the accuracy-oblivious
  baseline makes substantially more errors than the controlled side;
* 5(e) coupled tests: both error kinds bounded by their alphas at every
  n; the UNSURE count decreases as n grows.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig5_predicates import run_fig5d, run_fig5e

SAMPLE_SIZES = (10, 20, 30, 40, 50, 60, 70, 80)
N_PAIRS = 100


def test_fig5d_single_test_errors(benchmark, results_dir):
    sweep = benchmark.pedantic(
        lambda: run_fig5d(
            seed=17, n_pairs=N_PAIRS, sample_sizes=SAMPLE_SIZES
        ),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5d", sweep.render())

    for fp in sweep.false_positives:
        # alpha = 0.05 over 100 H0-true tests, with binomial slack.
        assert fp <= 11
    # False negatives are uncontrolled and large at n=10...
    assert sweep.false_negatives[0] > 20
    # ...but decrease as samples grow.
    assert sweep.false_negatives[-1] < sweep.false_negatives[0]
    # The accuracy-oblivious baseline errs and improves with n too.
    assert sweep.baseline_errors[0] > sweep.baseline_errors[-1]


def test_fig5e_coupled_tests(benchmark, results_dir):
    sweep = benchmark.pedantic(
        lambda: run_fig5e(
            seed=17, n_pairs=N_PAIRS, sample_sizes=SAMPLE_SIZES
        ),
        rounds=1, iterations=1,
    )
    save_result(results_dir, "fig5e", sweep.render())

    assert sweep.unsure is not None
    for fp, fn in zip(sweep.false_positives, sweep.false_negatives):
        # Theorem 3: both error kinds bounded by alpha = 0.05 (binomial
        # slack over 100 trials each).
        assert fp <= 11
        assert fn <= 11
    # Paper: "the number of unsure comparisons decreases as sample size
    # increases".
    assert sweep.unsure[-1] < sweep.unsure[0]
    # Decisions replace UNSURE without breaking the error bounds.
    assert sweep.unsure[0] <= 2 * N_PAIRS


def test_fig5d_vs_fig5e_errors(benchmark):
    """Coupling converts uncontrolled errors into UNSURE answers."""
    single = run_fig5d(seed=19, n_pairs=60, sample_sizes=(10, 40))
    coupled = run_fig5e(seed=19, n_pairs=60, sample_sizes=(10, 40))
    result = benchmark.pedantic(
        lambda: (single, coupled), rounds=1, iterations=1
    )
    single, coupled = result
    for i in range(2):
        total_single_errors = (
            single.false_positives[i] + single.false_negatives[i]
        )
        total_coupled_errors = (
            coupled.false_positives[i] + coupled.false_negatives[i]
        )
        assert total_coupled_errors <= total_single_errors
