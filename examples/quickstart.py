"""Quickstart: accuracy-aware queries over an uncertain stream.

Recreates the paper's running example (Example 1): two roads report
traffic delays — road 19 has only 3 observations, road 20 has 50.  Both
roads look identical to an accuracy-oblivious system; this one tells
them apart.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ExecutorConfig,
    HistogramLearner,
    UncertainTuple,
    run_query,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. Raw observations arrive (Figure 1 of the paper) -------------
    # Both roads have the same underlying delay behaviour; only the
    # number of reports differs.
    raw = {
        19: rng.lognormal(np.log(60), 0.35, size=3),   # 3 reports
        20: rng.lognormal(np.log(60), 0.35, size=50),  # 50 reports
    }

    # --- 2. The stream database learns one distribution per road --------
    learner = HistogramLearner(bucket_count=8, value_range=(20.0, 140.0))
    tuples = []
    for road_id, delays in raw.items():
        fitted = learner.learn(delays)
        tuples.append(
            UncertainTuple(
                {"road_id": float(road_id), "delay": fitted.as_dfsized()}
            )
        )
        print(
            f"road {road_id}: learned from {fitted.sample_size} reports, "
            f"sample mean {delays.mean():.1f}s"
        )

    # --- 3. The paper's probability-threshold query ----------------------
    # "SELECT Road_ID FROM t WHERE Delay >2/3 50"  (with prob >= 2/3,
    # delay exceeds 50 seconds).  Both roads satisfy it -- but with very
    # different reliability, which the accuracy info now exposes.
    print("\n== probability-threshold query (Delay > 50 PROB 2/3) ==")
    results = run_query(
        "SELECT road_id, delay FROM t WHERE delay > 50 PROB 2/3",
        tuples,
        config=ExecutorConfig(confidence=0.9, seed=1),
    )
    for result in results:
        road = result.value("road_id").distribution.mean()
        info = result.accuracy["delay"]
        interval = result.probability_interval.interval
        print(f"\nroad {road:.0f} qualifies "
              f"(P = {result.probability:.2f}, 90% CI {interval})")
        print(f"  mean delay 90% CI: {info.mean} "
              f"(n = {info.sample_size})")

    # --- 4. A significance predicate makes the difference a decision ----
    # mTest asks: is E[delay] > 50 *statistically significant* at 5%?
    # With coupled tests (alpha1, alpha2) the answer can also be UNSURE.
    print("\n== significance predicate: mTest(delay, '>', 50, .05, .05) ==")
    significant = run_query(
        "SELECT road_id FROM t WHERE mTest(delay, '>', 50, 0.05, 0.05)",
        tuples,
        config=ExecutorConfig(seed=1),
    )
    passing = sorted(
        r.value("road_id").distribution.mean() for r in significant
    )
    print(f"roads passing the test: {[int(r) for r in passing]}")
    print("road 19 is missing: three reports cannot support the claim "
          "at the requested error rates.")


if __name__ == "__main__":
    main()
