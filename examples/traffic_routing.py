"""Traffic-aware routing with coupled significance tests (paper §V-D).

A CarTel-style navigation backend must pick the faster of two candidate
routes from live taxi reports.  A naive system compares sample means and
silently errs; this one runs a coupled mdTest and answers TRUE / FALSE /
UNSURE with both error rates bounded — and keeps acquiring reports while
the answer is UNSURE.

Run:  python examples/traffic_routing.py
"""

import numpy as np

from repro import FieldStats, MdTest, ThreeValued, coupled_tests
from repro.workloads.cartel import CarTelSimulator
from repro.workloads.routes import Route, make_close_mean_pairs


def route_delay_stats(
    route: Route, sim: CarTelSimulator, reports_per_segment: int
) -> FieldStats:
    """Total-delay statistics from fresh per-segment reports.

    Per Definition 2 / Lemma 3 of the paper, summing one report from each
    segment gives a de facto observation of the route's total delay, so
    ``reports_per_segment`` reports yield that many d.f. observations.
    """
    samples = route.segment_samples(sim, reports_per_segment)
    df_sample = Route.total_delay_df_sample(samples)
    return FieldStats.from_sample(df_sample)


def main() -> None:
    rng = np.random.default_rng(4)
    sim = CarTelSimulator(n_segments=200, seed=4)

    # Two candidate routes whose true mean delays are ~4% apart —
    # close enough that small report counts cannot separate them.
    pair = make_close_mean_pairs(
        sim, n_pairs=1, segments_per_route=20, relative_gap=0.04, rng=rng
    )[0]
    fast, slow = pair.route_x, pair.route_y
    print(
        f"true mean delays: route A {pair.mean_x:.0f}s, "
        f"route B {pair.mean_y:.0f}s "
        f"(gap {100 * pair.gap / pair.mean_x:.1f}%)\n"
    )

    # Acquire reports in rounds; decide as soon as the coupled test is
    # confident at alpha1 = alpha2 = 5%.
    print(f"{'reports/segment':>16}  {'naive pick':>10}  {'coupled mdTest':>15}")
    for reports in (5, 10, 20, 40, 80, 160):
        stats_a = route_delay_stats(fast, sim, reports)
        stats_b = route_delay_stats(slow, sim, reports)

        naive = "A" if stats_a.mean < stats_b.mean else "B"

        # Is E[delay_B] - E[delay_A] > 0 statistically significant?
        outcome = coupled_tests(
            MdTest(stats_b, stats_a, ">", 0.0, 0.05), 0.05, 0.05
        )
        if outcome.value is ThreeValued.TRUE:
            verdict = "A is faster"
        elif outcome.value is ThreeValued.FALSE:
            verdict = "B is faster"
        else:
            verdict = "UNSURE - keep measuring"
        print(f"{reports:>16}  {naive:>10}  {verdict:>15}")

        if outcome.value is not ThreeValued.UNSURE:
            print(
                f"\ndecision reached at {reports} reports/segment with "
                f"false-positive and false-negative rates both <= 5%."
            )
            break
    else:
        print("\nno decision at the requested error rates — the system "
              "reports UNSURE instead of guessing.")


if __name__ == "__main__":
    main()
