"""A fleet-operations dashboard on the StreamDatabase facade.

End-to-end application combining the pieces:

* raw taxi reports for a city window are ingested and grouped per road
  (the Figure-1 transformation), so every road's delay distribution
  carries its sample size;
* a continuous query watches for roads that are *provably* congested
  (coupled mTest against the free-flow delay) and alerts as reports
  arrive;
* a join correlates road delays with a static road-metadata stream, and
  a grouped aggregate summarises delays per speed-limit class;
* finally the window's learned state is saved to JSON and reloaded — a
  restart does not lose the accuracy-bearing distributions.

Run:  python examples/fleet_dashboard.py
"""

import numpy as np

from repro import (
    CollectSink,
    ExecutorConfig,
    GroupedAggregate,
    Pipeline,
    StreamDatabase,
    TagSide,
    UncertainTuple,
    WindowJoin,
)
from repro.workloads.cartel import CarTelSimulator


def main() -> None:
    sim = CarTelSimulator(n_segments=80, seed=12)
    db = StreamDatabase(config=ExecutorConfig(seed=12, confidence=0.9))
    db.create_stream("roads")

    # --- continuous congestion alerting ---------------------------------
    alerts = []
    db.register_continuous(
        "congestion",
        # "provably congested": with FP and FN rates both <= 5%, the
        # road's expected delay exceeds 120 seconds.
        "SELECT segment_id, delay FROM roads "
        "WHERE mTest(delay, '>', 120, 0.05, 0.05)",
        alerts.append,
    )

    # --- ingest one reporting window -------------------------------------
    reports = [r.as_record() for r in sim.report_stream(window_minutes=10)]
    produced = db.ingest_observations(
        "roads", reports, group_by="segment_id", value="delay",
        carry=("speed_limit",), min_observations=2,
    )
    print(f"ingested {len(reports)} raw reports -> {produced} road tuples")
    print(f"congestion alerts (error-controlled): {len(alerts)}")
    if alerts:
        worst = max(
            alerts, key=lambda r: r.value("delay").distribution.mean()
        )
        info = worst.accuracy["delay"]
        print(
            f"  worst road {worst.value('segment_id').distribution.mean():.0f}: "
            f"mean delay CI {info.mean} from {info.sample_size} reports"
        )

    # --- ad-hoc query over the current window -----------------------------
    risky = db.query(
        "SELECT segment_id FROM roads WHERE delay > 100 PROB 0.5"
    )
    print(f"roads with P[delay > 100s] >= 0.5: {len(risky)}")

    # --- join delays with static metadata ---------------------------------
    metadata = [
        UncertainTuple(
            {
                "road_id": float(sid),
                "length_m": sim.spec(sid).length_m,
            }
        )
        for sid in sim.segment_ids()
    ]
    delay_tuples = db.query("SELECT segment_id, delay FROM roads")
    join = WindowJoin("road_id", window_size=200)
    join_sink = CollectSink()
    pipe = Pipeline([join, join_sink])
    left_tag, right_tag = TagSide("left"), TagSide("right")
    left_tag.connect(join)
    right_tag.connect(join)
    for tup in metadata:
        left_tag.receive(tup)
    for result in delay_tuples:
        right_tag.receive(
            UncertainTuple(
                {
                    "road_id": result.value("segment_id").distribution.mean(),
                    "delay": result.value("delay"),
                }
            )
        )
    print(f"joined {len(join_sink.results)} roads with metadata")
    per_meter = [
        r.dfsized("r_delay").distribution.mean() / r.value("l_length_m")
        for r in join_sink.results
    ]
    print(f"  mean delay per meter: {np.mean(per_meter):.3f} s/m")

    # --- per-speed-limit aggregate ----------------------------------------
    grouped = GroupedAggregate(
        "speed_limit", "delay", window_size=500, agg="avg",
        emit_every=False,
    )
    group_sink = CollectSink()
    group_pipe = Pipeline([grouped, group_sink])
    source = [
        UncertainTuple(
            {
                "speed_limit": result.value("speed_limit")
                .distribution.mean(),
                "delay": result.value("delay"),
            }
        )
        for result in db.query(
            "SELECT segment_id, delay, speed_limit FROM roads"
        )
    ]
    group_pipe.run(source)
    print("\naverage delay by speed-limit class (stream operator):")
    for row in group_sink.results:
        avg = row.value("avg")
        print(
            f"  {row.value('speed_limit'):>4.0f} mph roads: "
            f"{avg.distribution.mean():7.1f}s "
            f"(min sample size in class: {avg.sample_size})"
        )

    # The same question in one SQL line (GROUP BY over the buffer):
    print("\naverage delay by speed-limit class (SQL GROUP BY):")
    for row in db.query(
        "SELECT AVG(delay) AS m, COUNT(*) AS roads FROM roads "
        "GROUP BY speed_limit"
    ):
        print(
            f"  {row.value('speed_limit').distribution.mean():>4.0f} mph: "
            f"{row.value('m').distribution.mean():7.1f}s over "
            f"{row.value('roads').distribution.mean():.0f} roads"
        )

    _persistence_demo(db)


def _persistence_demo(db) -> None:
    import tempfile
    import pathlib

    from repro import load_database, save_database
    from repro.db import StreamDatabase

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "window.json"
        save_database(db, path)
        restored = load_database(path)
        results = restored.query("SELECT segment_id, delay FROM roads")
        print(
            f"\npersistence: saved {db.count('roads')} road tuples, "
            f"reloaded {restored.count('roads')}; accuracy survives "
            f"(first road n={results[0].accuracy['delay'].sample_size})"
        )


if __name__ == "__main__":
    main()
