"""Sensor-network monitoring with a sliding-window stream pipeline.

The §V-C workload as an application: each arriving item carries 20 raw
sensor readings; the pipeline learns a Gaussian per item, maintains a
count-based sliding-window AVG, attaches accuracy information to every
window result, and raises alerts through a significance filter whose
false-alarm rate is bounded.

Run:  python examples/sensor_monitoring.py
"""

import numpy as np

from repro import (
    CollectSink,
    Derive,
    FieldStats,
    GaussianLearner,
    MTest,
    Pipeline,
    SignificanceFilter,
    SlidingGaussianAverage,
    UncertainTuple,
    distribution_accuracy,
)

WINDOW = 50
ALERT_THRESHOLD = 75.0  # degrees


def make_sensor_stream(n_items: int, seed: int) -> list[UncertainTuple]:
    """Temperature items; a heat event raises the mean mid-stream."""
    rng = np.random.default_rng(seed)
    tuples = []
    for i in range(n_items):
        base = 70.0 if i < n_items // 2 else 78.0  # heat event at midpoint
        readings = rng.normal(base, 4.0, 20)
        tuples.append(UncertainTuple({"item": float(i), "raw": readings}))
    return tuples


def main() -> None:
    tuples = make_sensor_stream(400, seed=9)
    learner = GaussianLearner()

    def learn(tup: UncertainTuple):
        return learner.learn(tup.value("raw")).as_dfsized()

    def attach_accuracy(tup: UncertainTuple):
        field = tup.dfsized("avg")
        return distribution_accuracy(
            field.distribution, field.sample_size, confidence=0.9
        )

    def alert_predicate(tup: UncertainTuple) -> MTest:
        field = FieldStats.from_dfsized(tup.dfsized("avg"))
        return MTest(field, ">", ALERT_THRESHOLD, 0.05)

    alert_filter = SignificanceFilter(
        alert_predicate, alpha1=0.05, alpha2=0.05
    )
    pipeline = Pipeline(
        [
            Derive("temperature", learn),   # QP: learn from raw readings
            SlidingGaussianAverage("temperature", WINDOW),
            Derive("accuracy", attach_accuracy),
            alert_filter,                   # controlled-error alerting
            CollectSink(),
        ]
    )
    sink = pipeline.run(tuples)

    print(f"stream items: {len(tuples)}, window: {WINDOW}")
    print(f"alert condition: window AVG > {ALERT_THRESHOLD} deg "
          f"(coupled mTest, alpha1 = alpha2 = 5%)")
    print(f"decisions: {dict((k.value, v) for k, v in alert_filter.decisions.items())}")
    print(f"alerts raised: {len(sink.results)}")

    if sink.results:
        first = sink.results[0]
        item = first.value("item")
        info = first.value("accuracy")
        print(f"\nfirst alert at item {item:.0f}")
        print(f"  window AVG 90% mean CI: {info.mean}")
        print(f"  (the heat event started at item {len(tuples) // 2})")


if __name__ == "__main__":
    main()
