"""Online sample acquisition: stop measuring once accuracy suffices.

The paper's §I observation: "When the intervals are sufficiently narrow
to make a decision with enough confidence, we can stop acquiring raw
data/samples, which is a slow or expensive process."

This example prices each observation (think: dispatching a probe vehicle
or running a costly experiment) and acquires one batch at a time until
the 90% confidence interval of the mean is narrow enough to answer the
business question — comparing bootstrap and analytic interval widths
along the way.

Run:  python examples/online_acquisition.py
"""

import numpy as np

from repro import (
    accuracy_from_sample,
    bootstrap_accuracy_info,
)

QUESTION_THRESHOLD = 62.0   # is the mean delay above 62 seconds?
TARGET_HALF_WIDTH = 2.0     # stop when the mean CI half-width is <= this
BATCH = 10
COST_PER_OBSERVATION = 1.0  # arbitrary cost units


def main() -> None:
    rng = np.random.default_rng(21)
    true_mean_hint = np.exp(np.log(60) + 0.35**2 / 2)  # ~63.8s

    observations: list[float] = []
    print(f"question: is E[delay] > {QUESTION_THRESHOLD}s?  "
          f"(true mean ~ {true_mean_hint:.1f}s)")
    print(f"{'n':>4}  {'mean':>7}  {'analytic 90% CI':>22}  "
          f"{'bootstrap 90% CI':>22}  decision")

    while True:
        # Acquiring data is the expensive step we want to minimise.
        batch = rng.lognormal(np.log(60), 0.35, BATCH)
        observations.extend(batch.tolist())
        sample = np.asarray(observations)
        n = sample.size

        analytic = accuracy_from_sample(sample, confidence=0.9)
        mc_values = rng.choice(sample, size=100 * n, replace=True)
        bootstrap = bootstrap_accuracy_info(mc_values, n, confidence=0.9)

        ci = analytic.mean
        if ci.low > QUESTION_THRESHOLD:
            decision = "YES - stop"
        elif ci.high < QUESTION_THRESHOLD:
            decision = "NO - stop"
        elif ci.length / 2 <= TARGET_HALF_WIDTH:
            decision = "interval narrow, still straddles - stop, UNSURE"
        else:
            decision = "keep acquiring"

        print(f"{n:>4}  {sample.mean():>7.2f}  {str(ci):>22}  "
              f"{str(bootstrap.mean):>22}  {decision}")

        if decision != "keep acquiring":
            break
        if n >= 400:
            decision = "budget exhausted"
            break

    cost = len(observations) * COST_PER_OBSERVATION
    print(f"\nacquired {len(observations)} observations "
          f"(cost {cost:.0f} units) before stopping.")
    print("an accuracy-oblivious system has no stopping rule at all: it "
          "either wastes acquisition budget or answers from too little "
          "data without knowing it.")


if __name__ == "__main__":
    main()
